//! The [`SolverEngine`] facade: one validated front door for training and
//! serving neural PDE surrogates.
//!
//! The engine bundles everything the scattered seed API made callers wire
//! by hand — dataset, network, optimizer, multigrid schedule, energy loss —
//! behind a builder with typed validation, and adds the serving surface the
//! ROADMAP's traffic goals need:
//!
//! - [`SolverEngine::train`] — runs the configured multigrid schedule;
//! - [`SolverEngine::predict`] — one coefficient field in, one solution
//!   field (with exact Dirichlet values) out;
//! - [`SolverEngine::predict_batch`] — N requests rasterized into a single
//!   NCDHW tensor and answered in **one** forward pass, fronted by an LRU
//!   cache keyed by quantized coefficient fields so repeated queries never
//!   touch the network;
//! - [`SolverEngine::save_weights`] / [`SolverEngine::load_weights`] —
//!   checkpointing through the [`Model`] trait.
//!
//! ```no_run
//! use mgdiffnet::prelude::*;
//!
//! let mut engine = SolverEngine::builder()
//!     .resolution([64, 64])
//!     .problem(Problem::poisson_2d(DiffusivityModel::paper()))
//!     .cycle(CycleKind::HalfV)
//!     .levels(3)
//!     .samples(64)
//!     .batch_size(8)
//!     .build()?;
//! engine.train()?;
//! let nu = engine.dataset().nu_field(0, engine.resolution());
//! let u = engine.predict(&nu)?;
//! # Ok::<(), MgdError>(())
//! ```

use crate::compare::{compare_with_fem, FieldComparison};
use crate::cycle::CycleKind;
use crate::error::{MgdError, MgdResult};
use crate::loss::FemLoss;
use crate::mg_trainer::{MgConfig, MgRunLog, MultigridTrainer};
use crate::trainer::TrainConfig;
use mgd_dist::{launch_with, LocalComm};
use mgd_field::{stack_fields, Dataset, DiffusivityModel, InputEncoding};
use mgd_nn::{Adam, ConvBackend, Model, Optimizer, UNet, UNetConfig, WeightSnapshot};
use mgd_tensor::Tensor;
use std::collections::HashMap;

/// How [`SolverEngine::train`] distributes the data-parallel training loop
/// (paper §3.2).
///
/// Under `Threads(p)` the engine replicates its model and optimizer onto
/// `p` in-process ranks ([`mgd_dist::ThreadComm`]), shards every global
/// mini-batch across them, and averages gradients with the deterministic
/// ring all-reduce after each backward pass. Because every rank shuffles
/// with the same seed and the shard union equals the global batch (Eq. 15),
/// the epoch-loss trajectory matches [`Parallelism::Serial`] at the same
/// global batch size up to floating-point reduction order — for stat-free
/// networks (see [`SolverEngineBuilder::batch_norm`]) — and is bitwise
/// reproducible across runs at a fixed `p` either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-rank training through [`LocalComm`] (the default).
    #[default]
    Serial,
    /// Data-parallel training over `p` in-process worker threads.
    Threads(usize),
}

impl Parallelism {
    /// Number of data-parallel workers this mode trains with.
    pub fn workers(&self) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Threads(p) => p,
        }
    }
}

/// The PDE family an engine solves.
#[derive(Clone, Debug)]
pub enum Problem {
    /// 2D generalized Poisson with the paper's parametric diffusivity.
    Poisson2d(DiffusivityModel),
    /// 3D generalized Poisson.
    Poisson3d(DiffusivityModel),
}

impl Problem {
    /// 2D Poisson problem over the given diffusivity family.
    pub fn poisson_2d(model: DiffusivityModel) -> Self {
        Problem::Poisson2d(model)
    }

    /// 3D Poisson problem over the given diffusivity family.
    pub fn poisson_3d(model: DiffusivityModel) -> Self {
        Problem::Poisson3d(model)
    }

    /// Spatial rank of the problem (2 or 3).
    pub fn rank(&self) -> usize {
        match self {
            Problem::Poisson2d(_) => 2,
            Problem::Poisson3d(_) => 3,
        }
    }

    /// The diffusivity family.
    pub fn diffusivity(&self) -> &DiffusivityModel {
        match self {
            Problem::Poisson2d(m) | Problem::Poisson3d(m) => m,
        }
    }
}

/// Serving statistics of a [`SolverEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Batched forward passes executed (a `predict_batch` call contributes
    /// at most one, regardless of batch size).
    pub forward_passes: u64,
    /// Individual fields answered from the network.
    pub predicted_fields: u64,
    /// Individual fields answered from the cache.
    pub cache_hits: u64,
}

/// A small LRU cache keyed by quantized coefficient fields.
///
/// Keys quantize every ν value to ~1e-9 absolute resolution, so bitwise
/// jitter below solver precision still hits; the full quantized field is the
/// key (no hash-collision false positives).
struct PredictionCache {
    capacity: usize,
    entries: HashMap<Vec<u128>, (Tensor, u64)>,
    clock: u64,
}

impl PredictionCache {
    fn new(capacity: usize) -> Self {
        PredictionCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
        }
    }

    /// Quantizes a (finite — callers reject NaN/∞ first) field into a key.
    ///
    /// The quantization stays in the float domain: `round(v·1e9)` is an
    /// exact integer-valued f64 whose bit pattern is the key element.
    /// An earlier `as i64` cast saturated everything ≥ ~9.2e9 to `i64::MAX`
    /// (distinct huge coefficients collided onto one entry) and collapsed
    /// NaN to 0 (a NaN field cache-hit an all-zero field). Adding `0.0`
    /// normalizes `-0.0` to `+0.0` so sub-resolution jitter around zero
    /// still maps to one key. When `v·1e9` itself overflows f64
    /// (|v| ≳ 1.8e299) the raw bit pattern is used instead, tagged into a
    /// disjoint keyspace so it can never alias a quantized value.
    fn key(field: &Tensor) -> Vec<u128> {
        field
            .as_slice()
            .iter()
            .map(|&v| {
                let q = (v * 1e9).round() + 0.0;
                if q.is_finite() {
                    u128::from(q.to_bits())
                } else {
                    (1u128 << 64) | u128::from(v.to_bits())
                }
            })
            .collect()
    }

    fn get(&mut self, key: &[u128]) -> Option<Tensor> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(t, stamp)| {
            *stamp = clock;
            t.clone()
        })
    }

    fn insert(&mut self, key: Vec<u128>, value: Tensor) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least recently used entry.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(key, (value, self.clock));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Builder for [`SolverEngine`]; see the module docs for the shape of the
/// fluent API. Every setter is infallible — all validation happens in
/// [`SolverEngineBuilder::build`], which reports the *first* violated
/// constraint as a typed [`MgdError::InvalidConfig`].
pub struct SolverEngineBuilder {
    resolution: Option<Vec<usize>>,
    problem: Option<Problem>,
    cycle: CycleKind,
    levels: usize,
    fixed_epochs: usize,
    adapt: bool,
    cycles: usize,
    train: TrainConfig,
    learning_rate: f64,
    samples: usize,
    encoding: InputEncoding,
    net_depth: usize,
    base_filters: usize,
    batch_norm: bool,
    conv_backend: ConvBackend,
    seed: u64,
    cache_capacity: usize,
    parallelism: Parallelism,
    model: Option<Box<dyn Model>>,
    optimizer: Option<Box<dyn Optimizer>>,
    dataset: Option<Dataset>,
}

impl Default for SolverEngineBuilder {
    fn default() -> Self {
        SolverEngineBuilder {
            resolution: None,
            problem: None,
            cycle: CycleKind::HalfV,
            levels: 2,
            fixed_epochs: 3,
            adapt: false,
            cycles: 1,
            train: TrainConfig::default(),
            learning_rate: 3e-3,
            samples: 16,
            encoding: InputEncoding::LogNu,
            net_depth: 2,
            base_filters: 8,
            batch_norm: true,
            conv_backend: ConvBackend::default(),
            seed: 0,
            cache_capacity: 64,
            parallelism: Parallelism::Serial,
            model: None,
            optimizer: None,
            dataset: None,
        }
    }
}

impl SolverEngineBuilder {
    /// Finest spatial resolution (`[ny, nx]` or `[nz, ny, nx]`).
    pub fn resolution(mut self, dims: impl Into<Vec<usize>>) -> Self {
        self.resolution = Some(dims.into());
        self
    }

    /// The PDE family to solve (required).
    pub fn problem(mut self, problem: Problem) -> Self {
        self.problem = Some(problem);
        self
    }

    /// Multigrid training cycle (default Half-V, the paper's winner).
    pub fn cycle(mut self, cycle: CycleKind) -> Self {
        self.cycle = cycle;
        self
    }

    /// Hierarchy levels (default 2).
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Epochs per restriction visit (default 3).
    pub fn fixed_epochs(mut self, epochs: usize) -> Self {
        self.fixed_epochs = epochs;
        self
    }

    /// Enables §4.1.2 architectural adaptation.
    pub fn adapt(mut self, adapt: bool) -> Self {
        self.adapt = adapt;
        self
    }

    /// Consecutive cycle repetitions (default 1).
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles;
        self
    }

    /// Global mini-batch size (default 8).
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.train.batch_size = batch;
        self
    }

    /// Epoch cap for convergence phases (default 200).
    pub fn max_epochs(mut self, epochs: usize) -> Self {
        self.train.max_epochs = epochs;
        self
    }

    /// Early-stopping patience in epochs (default 8).
    pub fn patience(mut self, patience: usize) -> Self {
        self.train.patience = patience;
        self
    }

    /// Early-stopping minimum relative improvement (default 1e-3).
    pub fn min_delta(mut self, min_delta: f64) -> Self {
        self.train.min_delta = min_delta;
        self
    }

    /// Learning rate of the default Adam optimizer (default 3e-3).
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sobol sample count for the default dataset (default 16).
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Network input encoding (default `LogNu`).
    pub fn encoding(mut self, encoding: InputEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Depth of the default U-Net (default 2).
    pub fn net_depth(mut self, depth: usize) -> Self {
        self.net_depth = depth;
        self
    }

    /// Base filter count of the default U-Net (default 8).
    pub fn base_filters(mut self, filters: usize) -> Self {
        self.base_filters = filters;
        self
    }

    /// Toggles batch normalization in the default U-Net (default on).
    ///
    /// Batch-norm statistics are computed over each worker's *local* batch
    /// (standard data-parallel semantics), so the Eq. 15 worker-count
    /// independence guarantee — `Threads(p)` matching `Serial`
    /// epoch-for-epoch — only holds bitwise/within reduction tolerance for
    /// stat-free networks. Disable it when you need that equivalence;
    /// run-to-run determinism at a *fixed* worker count holds either way.
    pub fn batch_norm(mut self, batch_norm: bool) -> Self {
        self.batch_norm = batch_norm;
        self
    }

    /// Convolution kernel implementation of the default U-Net (default
    /// [`ConvBackend::Gemm`], the blocked-matmul lowering).
    ///
    /// [`ConvBackend::Direct`] selects the reference sliding-window
    /// kernels — numerically equivalent to f64 round-off, several times
    /// slower on fine grids; useful for A/B validation and for bisecting
    /// kernel regressions. Ignored when a custom
    /// [`model`](Self::model) is injected.
    pub fn conv_backend(mut self, backend: ConvBackend) -> Self {
        self.conv_backend = backend;
        self
    }

    /// Seed for weight init and epoch shuffles (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Capacity of the serving-side prediction cache; 0 disables caching
    /// (default 64 entries).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// How training distributes across workers (default
    /// [`Parallelism::Serial`]).
    ///
    /// [`Parallelism::Threads(p)`](Parallelism::Threads) runs the full
    /// multigrid schedule data-parallel over `p` in-process ranks: every
    /// rank shuffles with the shared seed, trains its shard of each global
    /// mini-batch, and exchanges gradients through the deterministic ring
    /// all-reduce, so the resulting model and loss trajectory match a
    /// serial run at the same global batch size up to f64 reduction order.
    /// The global `batch_size` must divide evenly by `p`.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Injects a custom model instead of the default U-Net. The model must
    /// accept NCDHW inputs at every hierarchy resolution.
    pub fn model(mut self, model: Box<dyn Model>) -> Self {
        self.model = Some(model);
        self
    }

    /// Injects a custom optimizer instead of the default Adam.
    pub fn optimizer(mut self, optimizer: Box<dyn Optimizer>) -> Self {
        self.optimizer = Some(optimizer);
        self
    }

    /// Injects an explicit dataset instead of Sobol-sampling one (its
    /// diffusivity model must match the problem's).
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Validates the configuration and assembles the engine.
    pub fn build(self) -> MgdResult<SolverEngine> {
        let resolution = self
            .resolution
            .ok_or_else(|| MgdError::InvalidConfig("resolution is required".into()))?;
        let problem = self
            .problem
            .ok_or_else(|| MgdError::InvalidConfig("problem is required".into()))?;
        if resolution.len() != problem.rank() {
            return Err(MgdError::InvalidConfig(format!(
                "resolution {resolution:?} is rank {}, problem needs rank {}",
                resolution.len(),
                problem.rank()
            )));
        }
        if self.levels == 0 {
            return Err(MgdError::InvalidConfig(
                "levels must be >= 1 (got 0)".into(),
            ));
        }
        if self.cycles == 0 {
            return Err(MgdError::InvalidConfig(
                "cycles must be >= 1 (got 0)".into(),
            ));
        }
        let depth = if self.model.is_some() {
            // A custom model's pooling depth is opaque; only the hierarchy
            // halvings constrain the resolution then.
            0
        } else {
            self.net_depth
        };
        let div = 1usize << (depth + self.levels - 1);
        for &d in &resolution {
            if d % 2 != 0 {
                return Err(MgdError::InvalidConfig(format!(
                    "resolution {resolution:?}: dim {d} is odd; the U-Net's \
                     pool/upsample stages need even dims at every level"
                )));
            }
            if d % div != 0 || d / div < 2 {
                return Err(MgdError::InvalidConfig(format!(
                    "resolution {resolution:?}: dim {d} must be a multiple of \
                     2^(net_depth + levels - 1) = {div} and keep >= 2 nodes \
                     at the coarsest level"
                )));
            }
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(MgdError::InvalidConfig(format!(
                "learning_rate must be positive and finite (got {})",
                self.learning_rate
            )));
        }
        let data = match self.dataset {
            Some(d) => {
                if d.is_empty() {
                    return Err(MgdError::InvalidConfig("dataset is empty".into()));
                }
                if d.model.num_modes() != problem.diffusivity().num_modes() {
                    return Err(MgdError::InvalidConfig(format!(
                        "dataset diffusivity has {} modes, problem has {}",
                        d.model.num_modes(),
                        problem.diffusivity().num_modes()
                    )));
                }
                d
            }
            None => {
                if self.samples == 0 {
                    return Err(MgdError::InvalidConfig(
                        "samples must be >= 1 (got 0)".into(),
                    ));
                }
                Dataset::sobol(self.samples, problem.diffusivity().clone(), self.encoding)
            }
        };
        if self.train.batch_size > data.len() {
            return Err(MgdError::InvalidConfig(format!(
                "batch_size {} exceeds the dataset's {} samples",
                self.train.batch_size,
                data.len()
            )));
        }
        if let Parallelism::Threads(0) = self.parallelism {
            return Err(MgdError::InvalidConfig(
                "Parallelism::Threads needs >= 1 worker (got 0)".into(),
            ));
        }
        let mut train = self.train;
        train.seed = self.seed;
        train.validate(self.parallelism.workers())?;
        let mg = MgConfig {
            cycle: self.cycle,
            levels: self.levels,
            fixed_epochs: self.fixed_epochs,
            adapt: self.adapt,
            cycles: self.cycles,
        };
        let schedule = MultigridTrainer::new(mg, train, resolution.clone())?;
        let model = match self.model {
            Some(m) => m,
            None => Box::new(UNet::new(UNetConfig {
                two_d: problem.rank() == 2,
                depth: self.net_depth,
                base_filters: self.base_filters,
                batch_norm: self.batch_norm,
                conv_backend: self.conv_backend,
                seed: self.seed,
                ..Default::default()
            })) as Box<dyn Model>,
        };
        let optimizer = match self.optimizer {
            Some(o) => o,
            None => Box::new(Adam::new(self.learning_rate)) as Box<dyn Optimizer>,
        };
        let loss = FemLoss::new(&resolution)?;
        Ok(SolverEngine {
            model,
            optimizer,
            data,
            resolution,
            problem,
            encoding: self.encoding,
            schedule,
            loss,
            parallelism: self.parallelism,
            cache: PredictionCache::new(self.cache_capacity),
            stats: ServeStats::default(),
            last_run: None,
        })
    }
}

/// A trained (or trainable) neural PDE solver with a serving surface.
pub struct SolverEngine {
    model: Box<dyn Model>,
    optimizer: Box<dyn Optimizer>,
    data: Dataset,
    resolution: Vec<usize>,
    problem: Problem,
    encoding: InputEncoding,
    schedule: MultigridTrainer,
    loss: FemLoss,
    parallelism: Parallelism,
    cache: PredictionCache,
    stats: ServeStats,
    last_run: Option<MgRunLog>,
}

impl std::fmt::Debug for SolverEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverEngine")
            .field("problem", &self.problem)
            .field("resolution", &self.resolution)
            .field("parallelism", &self.parallelism)
            .field("encoding", &self.encoding)
            .field("samples", &self.data.len())
            .field("cache_len", &self.cache.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SolverEngine {
    /// Starts a builder with the scaled-down defaults.
    pub fn builder() -> SolverEngineBuilder {
        SolverEngineBuilder::default()
    }

    /// Runs the configured multigrid training schedule under the engine's
    /// [`Parallelism`] mode. Invalidates the prediction cache (the weights
    /// changed).
    ///
    /// Under [`Parallelism::Threads(p)`](Parallelism::Threads) the engine
    /// replicates its model/optimizer onto `p` in-process ranks, trains
    /// data-parallel (shared-seed shuffles, per-rank shards, ring
    /// all-reduce after every backward pass, rank-0 broadcast before every
    /// phase), and keeps rank 0's model, optimizer state and run log — all
    /// ranks hold bitwise-identical replicas when the schedule finishes.
    pub fn train(&mut self) -> MgdResult<MgRunLog> {
        // Invalidate up front, not after: a run that errors out mid-schedule
        // has still stepped the (serial-mode, in-place) weights, and stale
        // entries from the pre-training model must not survive it.
        self.cache.clear();
        let log = match self.parallelism {
            Parallelism::Serial => {
                let comm = LocalComm::new();
                self.schedule
                    .run(&mut self.model, &mut self.optimizer, &self.data, &comm)?
            }
            Parallelism::Threads(p) => {
                let replicas: Vec<(Box<dyn Model>, Box<dyn Optimizer>)> = (0..p)
                    .map(|_| (self.model.clone_model(), self.optimizer.clone_optimizer()))
                    .collect();
                let schedule = &self.schedule;
                let data = &self.data;
                let results = launch_with(replicas, move |comm, (mut model, mut opt)| {
                    // Errors are returned (not unwrapped) so a failing rank
                    // unwinds cleanly; the post-all-reduce blow-up check in
                    // the trainer guarantees numerical failures strike all
                    // ranks in the same mini-batch, never leaving a peer
                    // blocked in a collective.
                    let log = schedule.run(&mut model, &mut opt, data, &comm)?;
                    Ok::<_, MgdError>((model, opt, log))
                });
                let mut rank0 = None;
                for (rank, res) in results.into_iter().enumerate() {
                    let out = res?;
                    if rank == 0 {
                        rank0 = Some(out);
                    }
                }
                let (model, opt, log) = rank0.expect("launch_with returns one result per rank");
                self.model = model;
                self.optimizer = opt;
                log
            }
        };
        self.last_run = Some(log.clone());
        Ok(log)
    }

    /// Predicts the solution field for one raw coefficient field ν shaped
    /// like [`Self::resolution`]. Boundary values are imposed exactly.
    pub fn predict(&mut self, coeff: &Tensor) -> MgdResult<Tensor> {
        Ok(self
            .predict_batch(std::slice::from_ref(coeff))?
            .pop()
            .expect("one output"))
    }

    /// Predicts solution fields for N coefficient fields in **one** network
    /// forward pass (cache hits excluded). This is the serving hot path:
    /// requests are answered from the LRU cache when an identical (up to
    /// quantization) field was already solved, and all remaining requests
    /// are stacked into a single NCDHW batch.
    pub fn predict_batch(&mut self, coeffs: &[Tensor]) -> MgdResult<Vec<Tensor>> {
        if coeffs.is_empty() {
            return Err(MgdError::Field(mgd_field::FieldError::Empty));
        }
        for c in coeffs {
            if c.dims() != &self.resolution[..] {
                return Err(MgdError::ShapeMismatch {
                    expected: self.resolution.clone(),
                    got: c.dims().to_vec(),
                });
            }
            // Reject NaN/∞ *before* keying: quantization cannot represent
            // them faithfully (a NaN coefficient must never alias a valid
            // field's cache entry), and the network would only propagate
            // the poison anyway.
            if c.has_non_finite() {
                let bad = c
                    .as_slice()
                    .iter()
                    .copied()
                    .find(|v| !v.is_finite())
                    .unwrap_or(f64::NAN);
                return Err(MgdError::NonFinite {
                    epoch: 0,
                    loss: bad,
                });
            }
        }
        let keys: Vec<Vec<u128>> = coeffs.iter().map(PredictionCache::key).collect();
        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(coeffs.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match self.cache.get(key) {
                Some(hit) => {
                    self.stats.cache_hits += 1;
                    outputs.push(Some(hit));
                }
                None => {
                    outputs.push(None);
                    miss_idx.push(i);
                }
            }
        }
        if !miss_idx.is_empty() {
            // Deduplicate identical fields inside the batch: solve each
            // distinct coefficient field once.
            let mut unique: Vec<usize> = Vec::new();
            for &i in &miss_idx {
                if !unique.iter().any(|&u| keys[u] == keys[i]) {
                    unique.push(i);
                }
            }
            let encoded: Vec<Tensor> = unique
                .iter()
                .map(|&i| self.encoding.encode(&coeffs[i]))
                .collect();
            let x = stack_fields(&encoded).map_err(MgdError::Field)?;
            let mut u = self.model.predict(&x);
            self.loss.apply_bc_batch(&mut u);
            self.stats.forward_passes += 1;
            self.stats.predicted_fields += unique.len() as u64;
            let vol: usize = self.resolution.iter().product();
            let solved: Vec<Tensor> = unique
                .iter()
                .enumerate()
                .map(|(slot, _)| {
                    Tensor::from_vec(
                        self.resolution.clone(),
                        u.as_slice()[slot * vol..(slot + 1) * vol].to_vec(),
                    )
                })
                .collect();
            for (field, &i) in solved.iter().zip(&unique) {
                self.cache.insert(keys[i].clone(), field.clone());
            }
            // Fill every miss (including intra-batch duplicates) from the
            // solved set, not the cache — caching may be disabled.
            for &i in &miss_idx {
                let slot = unique
                    .iter()
                    .position(|&u| keys[u] == keys[i])
                    .expect("every miss has a unique representative");
                outputs[i] = Some(solved[slot].clone());
            }
        }
        Ok(outputs
            .into_iter()
            .map(|o| o.expect("all slots filled"))
            .collect())
    }

    /// Predicts the solution for one ω parameter vector by rasterizing the
    /// coefficient field at the engine's resolution first.
    pub fn predict_omega(&mut self, omega: &[f64]) -> MgdResult<Tensor> {
        let nu = self
            .problem
            .diffusivity()
            .rasterize(omega, &self.resolution);
        self.predict(&nu)
    }

    /// §4.3-style comparison of the engine's prediction against a fresh FEM
    /// solve for dataset sample `sample`.
    pub fn compare_sample(&mut self, sample: usize) -> MgdResult<FieldComparison> {
        compare_with_fem(
            &mut self.model,
            &self.data,
            sample,
            &self.resolution.clone(),
        )
    }

    /// Saves the model weights (via the [`Model`] trait) to a JSON file.
    pub fn save_weights<P: AsRef<std::path::Path>>(&mut self, path: P) -> MgdResult<()> {
        WeightSnapshot::capture(&mut self.model).save(path)?;
        Ok(())
    }

    /// Loads weights saved by [`Self::save_weights`] into the engine's
    /// model (which must be structurally identical). Invalidates the cache.
    pub fn load_weights<P: AsRef<std::path::Path>>(&mut self, path: P) -> MgdResult<()> {
        let snap = WeightSnapshot::load(path)?;
        snap.restore(&mut self.model)
            .map_err(MgdError::Checkpoint)?;
        self.cache.clear();
        Ok(())
    }

    /// The engine's finest spatial resolution.
    pub fn resolution(&self) -> &[usize] {
        &self.resolution
    }

    /// The problem this engine was built for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The parallelism mode [`Self::train`] runs under.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Entries currently held by the prediction cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The log of the last completed [`Self::train`] call.
    pub fn last_run(&self) -> Option<&MgRunLog> {
        self.last_run.as_ref()
    }

    /// Mutable access to the underlying model (escape hatch for research
    /// code; mutating weights invalidates the cache).
    pub fn model_mut(&mut self) -> &mut dyn Model {
        self.cache.clear();
        &mut *self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder() -> SolverEngineBuilder {
        SolverEngine::builder()
            .resolution([16, 16])
            .problem(Problem::poisson_2d(DiffusivityModel::paper()))
            .levels(2)
            .samples(8)
            .batch_size(4)
            .max_epochs(4)
            .fixed_epochs(1)
            .seed(3)
    }

    #[test]
    fn builder_requires_resolution_and_problem() {
        let e = SolverEngine::builder().build();
        assert!(matches!(e, Err(MgdError::InvalidConfig(m)) if m.contains("resolution")));
        let e = SolverEngine::builder().resolution([16, 16]).build();
        assert!(matches!(e, Err(MgdError::InvalidConfig(m)) if m.contains("problem")));
    }

    #[test]
    fn builder_rejects_zero_levels() {
        let e = small_builder().levels(0).build();
        assert!(matches!(e, Err(MgdError::InvalidConfig(m)) if m.contains("levels")));
    }

    #[test]
    fn builder_rejects_odd_resolution() {
        let e = small_builder().resolution([15, 16]).build();
        assert!(
            matches!(e, Err(MgdError::InvalidConfig(m)) if m.contains("odd") || m.contains("multiple"))
        );
    }

    #[test]
    fn builder_rejects_batch_larger_than_dataset() {
        let e = small_builder().samples(4).batch_size(8).build();
        assert!(matches!(e, Err(MgdError::InvalidConfig(m)) if m.contains("batch_size")));
    }

    #[test]
    fn builder_rejects_rank_mismatch() {
        let e = small_builder().resolution([8, 16, 16]).build();
        assert!(matches!(e, Err(MgdError::InvalidConfig(m)) if m.contains("rank")));
    }

    #[test]
    fn predict_imposes_bcs_and_caches() {
        let mut engine = small_builder().build().unwrap();
        let nu = engine.dataset().nu_field(0, &[16, 16]);
        let u = engine.predict(&nu).unwrap();
        assert_eq!(u.dims(), &[16, 16]);
        for j in 0..16 {
            assert_eq!(u.at(&[j, 0]), 1.0);
            assert_eq!(u.at(&[j, 15]), 0.0);
        }
        assert_eq!(engine.stats().forward_passes, 1);
        // Second identical query: cache hit, no new forward pass.
        let u2 = engine.predict(&nu).unwrap();
        assert_eq!(u, u2);
        assert_eq!(engine.stats().forward_passes, 1);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn predict_batch_is_one_forward_pass() {
        let mut engine = small_builder().build().unwrap();
        let fields: Vec<Tensor> = (0..6)
            .map(|s| engine.dataset().nu_field(s, &[16, 16]))
            .collect();
        let out = engine.predict_batch(&fields).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(engine.stats().forward_passes, 1);
        assert_eq!(engine.stats().predicted_fields, 6);
    }

    #[test]
    fn predict_batch_deduplicates_identical_requests() {
        let mut engine = small_builder().build().unwrap();
        let nu = engine.dataset().nu_field(0, &[16, 16]);
        let out = engine.predict_batch(&[nu.clone(), nu.clone(), nu]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
        // One unique field -> one predicted field.
        assert_eq!(engine.stats().predicted_fields, 1);
    }

    #[test]
    fn predict_rejects_wrong_shape() {
        let mut engine = small_builder().build().unwrap();
        let bad = Tensor::ones([8, 8]);
        assert!(matches!(
            engine.predict(&bad),
            Err(MgdError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn cache_disabled_still_correct() {
        let mut engine = small_builder().cache_capacity(0).build().unwrap();
        let nu = engine.dataset().nu_field(0, &[16, 16]);
        let a = engine.predict(&nu).unwrap();
        let b = engine.predict(&nu).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.stats().forward_passes, 2, "no caching when disabled");
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut engine = small_builder().cache_capacity(2).build().unwrap();
        let f: Vec<Tensor> = (0..3)
            .map(|s| engine.dataset().nu_field(s, &[16, 16]))
            .collect();
        let _ = engine.predict(&f[0]).unwrap();
        let _ = engine.predict(&f[1]).unwrap();
        let _ = engine.predict(&f[0]).unwrap(); // refresh 0
        let _ = engine.predict(&f[2]).unwrap(); // evicts 1
        assert_eq!(engine.cache_len(), 2);
        let hits_before = engine.stats().cache_hits;
        let _ = engine.predict(&f[1]).unwrap(); // miss
        assert_eq!(engine.stats().cache_hits, hits_before);
        let _ = engine.predict(&f[0]).unwrap(); // 0 was refreshed: may or may not survive the second insert
    }

    #[test]
    fn predict_rejects_non_finite_inputs() {
        let mut engine = small_builder().build().unwrap();
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut bad = engine.dataset().nu_field(0, &[16, 16]);
            *bad.at_mut(&[7, 7]) = poison;
            assert!(
                matches!(engine.predict(&bad), Err(MgdError::NonFinite { .. })),
                "poison {poison} must be rejected"
            );
        }
        assert_eq!(engine.cache_len(), 0, "rejected inputs never get cached");
        assert_eq!(engine.stats().forward_passes, 0);
        // Crucially: a NaN field must not cache-hit the all-zero field the
        // old `as i64` cast collapsed it onto.
        let zeros = Tensor::zeros([16, 16]);
        let _ = engine.predict(&zeros).unwrap();
        let mut nan_field = Tensor::zeros([16, 16]);
        *nan_field.at_mut(&[0, 0]) = f64::NAN;
        assert!(matches!(
            engine.predict(&nan_field),
            Err(MgdError::NonFinite { .. })
        ));
        assert_eq!(
            engine.stats().cache_hits,
            0,
            "NaN field must not alias the zero field's entry"
        );
    }

    #[test]
    fn cache_key_does_not_saturate_on_huge_values() {
        // The old `(v * 1e9).round() as i64` saturated every value beyond
        // ~9.2e9 to i64::MAX, so distinct huge coefficient fields collided
        // onto one cache entry. The float-domain key keeps them apart.
        let a = Tensor::from_vec([2, 2], vec![1.0e10, 1.0, 1.0, 1.0]);
        let b = Tensor::from_vec([2, 2], vec![2.0e10, 1.0, 1.0, 1.0]);
        assert_ne!(
            PredictionCache::key(&a),
            PredictionCache::key(&b),
            "values past the old i64 saturation point must keep distinct keys"
        );
        // Sub-resolution jitter still lands on the same key (the cache's
        // reason to exist), including across the ±0.0 boundary.
        let c = Tensor::from_vec([2, 2], vec![1.0e10, 1.0 + 1e-12, 1.0, 1.0]);
        assert_eq!(PredictionCache::key(&a), PredictionCache::key(&c));
        let z_pos = Tensor::from_vec([1, 2], vec![0.0, 1.0]);
        let z_neg = Tensor::from_vec([1, 2], vec![-1e-12, 1.0]);
        assert_eq!(PredictionCache::key(&z_pos), PredictionCache::key(&z_neg));
        // Even past f64's own v*1e9 overflow point (~1.8e299) distinct
        // values keep distinct keys, and the tagged fallback keyspace
        // cannot alias a quantized value with the same bit pattern.
        let h1 = Tensor::from_vec([1, 2], vec![1.0e300, 1.0]);
        let h2 = Tensor::from_vec([1, 2], vec![2.0e300, 1.0]);
        assert_ne!(PredictionCache::key(&h1), PredictionCache::key(&h2));
        let overflow = Tensor::from_vec([1, 1], vec![1.0e300]);
        let quantized_twin = Tensor::from_vec([1, 1], vec![1.0e300 / 1e9]);
        assert_ne!(
            PredictionCache::key(&overflow),
            PredictionCache::key(&quantized_twin),
            "tagged fallback must not alias round(v*1e9) of a smaller value"
        );
    }

    #[test]
    fn conv_backend_knob_is_equivalent_and_serves() {
        // Same seed, different kernels: predictions must agree to f64
        // round-off, and the Direct engine must train/serve end to end.
        let mut gemm_engine = small_builder().build().unwrap();
        let mut direct_engine = small_builder()
            .conv_backend(ConvBackend::Direct)
            .build()
            .unwrap();
        let nu = gemm_engine.dataset().nu_field(1, &[16, 16]);
        let ug = gemm_engine.predict(&nu).unwrap();
        let ud = direct_engine.predict(&nu).unwrap();
        assert!(
            ug.rel_l2_error(&ud) < 1e-12,
            "backends diverge: {}",
            ug.rel_l2_error(&ud)
        );
        let log = direct_engine.train().unwrap();
        assert!(log.final_loss.is_finite());
    }

    #[test]
    fn threads_training_runs_and_keeps_rank0_model() {
        let mut engine = small_builder()
            .parallelism(Parallelism::Threads(2))
            .build()
            .unwrap();
        assert_eq!(engine.parallelism(), Parallelism::Threads(2));
        let log = engine.train().unwrap();
        assert!(log.final_loss.is_finite());
        // The trained model serves immediately.
        let nu = engine.dataset().nu_field(1, &[16, 16]);
        let u = engine.predict(&nu).unwrap();
        assert!(u.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn builder_rejects_zero_threads_and_indivisible_batch() {
        let e = small_builder().parallelism(Parallelism::Threads(0)).build();
        assert!(
            matches!(e, Err(MgdError::InvalidConfig(ref m)) if m.contains("Threads")),
            "{e:?}"
        );
        // Global batch 4 cannot shard across 3 workers.
        let e = small_builder().parallelism(Parallelism::Threads(3)).build();
        assert!(
            matches!(e, Err(MgdError::InvalidConfig(ref m)) if m.contains("divide")),
            "{e:?}"
        );
    }

    #[test]
    fn train_invalidates_cache() {
        let mut engine = small_builder().max_epochs(1).build().unwrap();
        let nu = engine.dataset().nu_field(0, &[16, 16]);
        let before = engine.predict(&nu).unwrap();
        assert_eq!(engine.cache_len(), 1);
        let log = engine.train().unwrap();
        assert!(log.final_loss.is_finite());
        assert_eq!(engine.cache_len(), 0, "training must clear the cache");
        let after = engine.predict(&nu).unwrap();
        assert!(before.rel_l2_error(&after) > 0.0, "weights changed");
    }

    #[test]
    fn predict_omega_matches_manual_rasterization() {
        let mut engine = small_builder().build().unwrap();
        let omega = engine.dataset().omegas[0].clone();
        let via_omega = engine.predict_omega(&omega).unwrap();
        let nu = engine.dataset().nu_field(0, &[16, 16]);
        let via_field = engine.predict(&nu).unwrap();
        assert_eq!(via_omega, via_field);
    }

    #[test]
    fn weights_roundtrip_through_files() {
        let mut engine = small_builder().build().unwrap();
        // Sample 1, not 0: Sobol sample 0 is ω = 0, whose log-ν input is
        // identically zero — every zero-bias net answers 0.5 there.
        let nu = engine.dataset().nu_field(1, &[16, 16]);
        let y0 = engine.predict(&nu).unwrap();
        let dir = std::env::temp_dir().join("mgd_engine_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");
        engine.save_weights(&path).unwrap();
        // A differently-seeded engine predicts differently, then matches
        // after loading the saved weights.
        let mut other = small_builder().seed(7).build().unwrap();
        assert!(other.predict(&nu).unwrap().rel_l2_error(&y0) > 1e-9);
        other.load_weights(&path).unwrap();
        assert!(other.predict(&nu).unwrap().rel_l2_error(&y0) < 1e-15);
        std::fs::remove_file(&path).ok();
    }
}
