//! Mini-batch sharding rules (paper §3.2).
//!
//! The paper pads the dataset so the sample count `Ns` divides evenly
//! among the `p` workers, shuffles with a seed shared by every rank, and
//! gives each rank a contiguous shard of every global mini-batch. Because
//! the union of the shards is exactly the global batch, averaged gradients
//! equal the serial full-batch gradient (Eq. 15).

/// Wrap-pads a permutation in place so `idx.len()` is a multiple of
/// `batch`, repeating entries from the front (the paper's dataset
/// augmentation: reused samples, never fabricated ones).
pub fn pad_indices(idx: &mut Vec<usize>, batch: usize) {
    if batch == 0 || idx.is_empty() {
        return;
    }
    let orig = idx.len();
    let mut k = 0;
    while !idx.len().is_multiple_of(batch) {
        idx.push(idx[k % orig]);
        k += 1;
    }
}

/// Splits a (padded) permutation into global mini-batches of size `batch`
/// (a trailing partial batch is kept — pad first with [`pad_indices`] for
/// equal-size batches).
pub fn global_minibatches(perm: &[usize], batch: usize) -> Vec<Vec<usize>> {
    assert!(batch > 0, "batch size must be positive");
    perm.chunks(batch).map(<[usize]>::to_vec).collect()
}

/// Rank `rank`'s contiguous shard of one global mini-batch.
///
/// The global batch must divide evenly (`mb.len() % p == 0`); the shards
/// of ranks `0..p` partition `mb` in order, so
/// `∪_r local_minibatch(mb, r, p) == mb`.
pub fn local_minibatch(mb: &[usize], rank: usize, p: usize) -> &[usize] {
    assert!(
        p > 0 && rank < p,
        "rank {rank} out of range for {p} workers"
    );
    assert_eq!(
        mb.len() % p,
        0,
        "global mini-batch of {} does not divide across {p} workers",
        mb.len()
    );
    let k = mb.len() / p;
    &mb[rank * k..(rank + 1) * k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_makes_length_divisible_reusing_front_samples() {
        for n in 1usize..40 {
            for batch in 1usize..9 {
                let mut idx: Vec<usize> = (0..n).map(|i| i * 10).collect();
                pad_indices(&mut idx, batch);
                assert_eq!(idx.len() % batch, 0, "n={n} batch={batch}");
                assert!(idx.len() < n + batch, "pads at most batch-1 entries");
                // Padded entries replicate the permutation's own prefix.
                for (j, &v) in idx[n..].iter().enumerate() {
                    assert_eq!(v, idx[j % n]);
                }
            }
        }
    }

    #[test]
    fn pad_handles_degenerate_inputs() {
        let mut empty: Vec<usize> = Vec::new();
        pad_indices(&mut empty, 4);
        assert!(empty.is_empty());
        let mut idx = vec![1, 2, 3];
        pad_indices(&mut idx, 0);
        assert_eq!(idx, vec![1, 2, 3]);
    }

    #[test]
    fn every_rank_shard_is_equal_length_and_partitions_the_batch() {
        for n in [8usize, 12, 24] {
            for p in [1usize, 2, 3, 4] {
                // Global batch: a multiple of p, as Trainer::new asserts.
                let batch = 2 * p;
                let mut perm: Vec<usize> = (0..n).rev().collect();
                pad_indices(&mut perm, batch);
                for mb in global_minibatches(&perm, batch) {
                    let shard_len = mb.len() / p;
                    let mut union = Vec::new();
                    for r in 0..p {
                        let shard = local_minibatch(&mb, r, p);
                        assert_eq!(shard.len(), shard_len, "n={n} p={p} r={r}");
                        union.extend_from_slice(shard);
                    }
                    assert_eq!(union, mb, "shards must partition the global batch in order");
                }
            }
        }
    }

    #[test]
    fn global_minibatches_cover_the_permutation_in_order() {
        let perm: Vec<usize> = vec![5, 3, 1, 4, 2, 0];
        let mbs = global_minibatches(&perm, 2);
        assert_eq!(mbs.len(), 3);
        let flat: Vec<usize> = mbs.into_iter().flatten().collect();
        assert_eq!(flat, perm);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn local_minibatch_rejects_uneven_split() {
        let mb = vec![1, 2, 3];
        let _ = local_minibatch(&mb, 0, 2);
    }
}
