//! In-process distributed communication for MGDiffNet (paper §3.2).
//!
//! The paper trains data-parallel: every worker holds a full replica of the
//! network, computes gradients on its shard of each global mini-batch, and
//! exchanges them through an all-reduce so that each step is identical to
//! serial training on the full batch (Eq. 15). This crate provides that
//! substrate with *in-process ranks* — `p` OS threads connected by
//! unbounded channels — so the distributed code paths run (and are tested)
//! on one machine, mirroring how the related learned-multigrid systems
//! simulate device parallelism:
//!
//! - [`Comm`] — the communicator interface: rank/size, all-reduce
//!   (sum/max), broadcast, barrier, and point-to-point send/recv (used by
//!   the slab-decomposed FEM solver's halo exchange);
//! - [`LocalComm`] — the size-1 serial communicator: every collective is a
//!   no-op, making serial training the `p = 1` special case of one code
//!   path;
//! - [`ThreadComm`] — `p` in-process ranks over threads and mailboxes with
//!   a pipelined ring all-reduce whose reduction order is *rank-order
//!   deterministic*: results are bitwise identical on every rank and equal
//!   to the left-fold serial sum;
//! - [`launch`] — runs one closure per rank and collects rank-ordered
//!   results (panics on any rank surface as `rank panicked` in the caller);
//!   [`launch_with`] additionally moves an owned payload into each rank
//!   (how the engine ships one model/optimizer replica per worker);
//! - [`average_gradients`] / [`broadcast_params`] — the two collectives of
//!   Algorithm 1, over flat parameter views;
//! - [`global_minibatches`] / [`local_minibatch`] / [`pad_indices`] — the
//!   §3.2 sharding rules: pad so the sample count divides evenly, then
//!   give every rank an equal contiguous shard of each global mini-batch;
//! - [`halo`] — the shared spatial-decomposition substrate: fallible
//!   [`SlabPartition`]s of one spatial axis, `[pre, split, post]` slab
//!   carving/assembly, and the tagged halo-plane [`exchange_extend`] used
//!   by both the distributed FEM solver and the slab-decomposed U-Net
//!   forward (with a posted/finished split — [`exchange_post`] /
//!   [`PendingHalo`] — so local compute can overlap in-flight planes);
//! - [`SlabPool`] — a persistent rank pool (long-lived worker threads,
//!   each owning one rank plus per-rank state) that dispatches one
//!   closure per rank per request, amortizing thread spawns across the
//!   many `predict` calls of a serving workload.

mod comm;
pub mod halo;
mod pool;
mod shard;
mod thread_comm;

pub use comm::{Comm, LocalComm};
pub use halo::{
    assemble_planes, carve_planes, exchange_extend, exchange_post, place_planes, ExtendedSlab,
    HaloElement, PartitionError, PendingHalo, SlabLayout, SlabPartition,
};
pub use pool::{total_rank_spawns, SlabPool};
pub use shard::{global_minibatches, local_minibatch, pad_indices};
pub use thread_comm::{launch, launch_with, ThreadComm};

use std::time::Instant;

/// All-reduce-averages a flat gradient vector across workers, in place.
///
/// Returns the wall-clock seconds spent in the collective, which the
/// trainer accounts as communication time. After the call every rank holds
/// `(Σ_r flat_r) / p`, bitwise identical across ranks.
pub fn average_gradients<C: Comm>(comm: &C, flat: &mut [f64]) -> f64 {
    let start = Instant::now();
    if comm.size() > 1 {
        comm.allreduce_sum(flat);
        let inv = 1.0 / comm.size() as f64;
        for x in flat.iter_mut() {
            *x *= inv;
        }
    }
    start.elapsed().as_secs_f64()
}

/// Broadcasts a flat parameter vector from rank 0 to all ranks, in place.
///
/// Call once before distributed training so every replica starts from
/// rank 0's initialization; a no-op for `p = 1`.
pub fn broadcast_params<C: Comm>(comm: &C, flat: &mut [f64]) {
    if comm.size() > 1 {
        comm.broadcast(0, flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_gradients_divides_by_worker_count() {
        let results = launch(4, |comm| {
            let mut g = vec![(comm.rank() + 1) as f64; 6];
            let secs = average_gradients(&comm, &mut g);
            assert!(secs >= 0.0);
            g
        });
        // (1 + 2 + 3 + 4) / 4 = 2.5 in every slot on every rank.
        for buf in &results {
            assert!(buf.iter().all(|&x| x == 2.5), "{buf:?}");
        }
    }

    #[test]
    fn average_gradients_serial_is_identity() {
        let comm = LocalComm::new();
        let mut g = vec![0.25, -1.5, 3.0];
        let orig = g.clone();
        average_gradients(&comm, &mut g);
        assert_eq!(g, orig);
    }

    #[test]
    fn broadcast_params_syncs_all_ranks_to_root() {
        let results = launch(3, |comm| {
            let mut w: Vec<f64> = if comm.rank() == 0 {
                (0..100).map(|i| (i as f64).sin()).collect()
            } else {
                vec![f64::NAN; 100]
            };
            broadcast_params(&comm, &mut w);
            w
        });
        let root = &results[0];
        assert!(root.iter().all(|x| x.is_finite()));
        for (r, w) in results.iter().enumerate() {
            for (a, b) in w.iter().zip(root) {
                assert_eq!(a.to_bits(), b.to_bits(), "rank {r} diverged from root");
            }
        }
    }
}
