//! Z-slab partitioning and tagged halo-plane exchange over a [`Comm`].
//!
//! This is the shared spatial-decomposition substrate of the workspace:
//! the distributed FEM solver (`mgdiffnet::dist_fem`) and the slab-
//! decomposed U-Net forward (`mgd_nn::spatial`) both partition the slowest
//! varying spatial axis into `p` contiguous slabs and refresh thin halo
//! regions at the cuts before every stencil application.
//!
//! Fields are viewed through a [`SlabLayout`] as a row-major
//! `[pre, split, post]` array, where `split` is the partitioned axis:
//!
//! - an NCDHW tensor split along depth is `[n·c, d, h·w]`;
//! - an NCDHW tensor with a unit depth axis (2D problems) split along
//!   height is `[n·c, h, w]`;
//! - a nodal FEM field split along z is `[1, nz, ny·nx]`.
//!
//! One "plane" is therefore `pre · post` scalars gathered from `pre`
//! strided chunks of `post` contiguous values. [`carve_planes`] /
//! [`assemble_planes`] move slabs between the global field and per-rank
//! storage, and [`exchange_extend`] performs one tagged halo exchange:
//! every rank sends its boundary planes to its ring neighbours and returns
//! its slab extended by the received halo planes.
//!
//! All constructors are fallible: an over-decomposed or misaligned
//! partition surfaces as a typed [`PartitionError`] at configuration time
//! instead of panicking inside a rank (which would poison the communicator
//! and take every peer down with an opaque `rank panicked`).

use crate::comm::Comm;

/// A scalar that can ride the `f64` wire format of [`Comm`] messages.
///
/// `f64` maps one-to-one; `f32` bit-packs two values per wire word, so an
/// f32 halo exchange moves **half the bytes** of the f64 exchange — the
/// mechanism behind reduced-precision slab serving. Pack/unpack round-trips
/// are bit-exact (no value ever passes through a float conversion).
pub trait HaloElement: Copy + Default + Send + Sync + 'static {
    /// Packs values into `f64` wire words.
    fn pack_wire(vals: &[Self]) -> Vec<f64>;
    /// Unpacks exactly `len` values from `wire`.
    fn unpack_wire(wire: &[f64], len: usize) -> Vec<Self>;
    /// Number of `f64` wire words that `len` packed values occupy —
    /// lets streaming consumers size bounded I/O buffers without
    /// materializing a whole packed payload.
    fn wire_words(len: usize) -> usize;
}

impl HaloElement for f64 {
    fn pack_wire(vals: &[f64]) -> Vec<f64> {
        vals.to_vec()
    }

    fn unpack_wire(wire: &[f64], len: usize) -> Vec<f64> {
        assert_eq!(wire.len(), len, "f64 wire length mismatch");
        wire.to_vec()
    }

    fn wire_words(len: usize) -> usize {
        len
    }
}

impl HaloElement for f32 {
    fn pack_wire(vals: &[f32]) -> Vec<f64> {
        // Two f32 bit patterns per wire word (high half first); a ragged
        // tail leaves the low half zero. Bit-level, so NaN payloads and
        // signed zeros survive unchanged.
        vals.chunks(2)
            .map(|pair| {
                let hi = (pair[0].to_bits() as u64) << 32;
                let lo = pair.get(1).map_or(0, |v| v.to_bits() as u64);
                f64::from_bits(hi | lo)
            })
            .collect()
    }

    fn unpack_wire(wire: &[f64], len: usize) -> Vec<f32> {
        assert_eq!(wire.len(), len.div_ceil(2), "f32 wire length mismatch");
        let mut out = Vec::with_capacity(len);
        for (i, w) in wire.iter().enumerate() {
            let bits = w.to_bits();
            out.push(f32::from_bits((bits >> 32) as u32));
            if 2 * i + 1 < len {
                out.push(f32::from_bits(bits as u32));
            }
        }
        out
    }

    fn wire_words(len: usize) -> usize {
        len.div_ceil(2)
    }
}

/// Why a [`SlabPartition`] could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// Fewer indivisible split units (element layers, or aligned plane
    /// blocks) than ranks: at least one rank would own nothing.
    OverDecomposed {
        /// Number of indivisible units along the split axis.
        units: usize,
        /// Requested rank count.
        ranks: usize,
    },
    /// The split extent is not a multiple of the required alignment.
    Misaligned {
        /// Total planes along the split axis.
        extent: usize,
        /// Required slab-size multiple.
        align: usize,
    },
    /// A degenerate request (zero ranks, or too few planes to split).
    Degenerate {
        /// Total planes along the split axis.
        extent: usize,
        /// Requested rank count.
        ranks: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::OverDecomposed { units, ranks } => write!(
                f,
                "over-decomposed slab partition: {units} split unit(s) cannot \
                 give each of {ranks} ranks at least one"
            ),
            PartitionError::Misaligned { extent, align } => write!(
                f,
                "misaligned slab partition: extent {extent} is not a \
                 multiple of the required slab alignment {align}"
            ),
            PartitionError::Degenerate { extent, ranks } => write!(
                f,
                "degenerate slab partition: extent {extent} across {ranks} rank(s)"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A partition of one spatial axis into `p` contiguous slabs.
///
/// `starts` has length `p + 1`; rank `r` owns planes
/// `starts[r]..starts[r+1]`, and the last rank additionally owns the
/// closing plane when `starts[p] < n_split` (the FEM node-plane
/// convention, where `starts` counts *element layers*). Partitions built
/// with [`SlabPartition::aligned`] satisfy `starts[p] == n_split`, so
/// [`SlabPartition::owned_planes`] tiles the axis exactly in both cases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlabPartition {
    /// Total planes along the split (slowest) axis.
    pub n_split: usize,
    /// First owned plane per rank (len p+1).
    pub starts: Vec<usize>,
}

impl SlabPartition {
    /// Splits `n_split` node planes (with `n_split - 1` element layers)
    /// across `p` ranks as evenly as possible, by element layers — the
    /// distributed-FEM convention where the closing node plane belongs to
    /// the last rank.
    pub fn new(n_split: usize, p: usize) -> Result<Self, PartitionError> {
        if p == 0 || n_split < 2 {
            return Err(PartitionError::Degenerate {
                extent: n_split,
                ranks: p,
            });
        }
        let layers = n_split - 1;
        if p > layers {
            return Err(PartitionError::OverDecomposed {
                units: layers,
                ranks: p,
            });
        }
        let mut starts = Vec::with_capacity(p + 1);
        for r in 0..=p {
            starts.push(r * layers / p);
        }
        Ok(SlabPartition { n_split, starts })
    }

    /// Splits `extent` planes across `p` ranks so every slab size is a
    /// positive multiple of `align` — the convention of the slab-
    /// decomposed U-Net forward, where `align = 2^depth` keeps every
    /// pool/upsample boundary on a slab cut.
    pub fn aligned(extent: usize, p: usize, align: usize) -> Result<Self, PartitionError> {
        if p == 0 || extent == 0 || align == 0 {
            return Err(PartitionError::Degenerate { extent, ranks: p });
        }
        if !extent.is_multiple_of(align) {
            return Err(PartitionError::Misaligned { extent, align });
        }
        let blocks = extent / align;
        if p > blocks {
            return Err(PartitionError::OverDecomposed {
                units: blocks,
                ranks: p,
            });
        }
        let mut starts = Vec::with_capacity(p + 1);
        for r in 0..=p {
            starts.push((r * blocks / p) * align);
        }
        debug_assert_eq!(starts[p], extent);
        Ok(SlabPartition {
            n_split: extent,
            starts,
        })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Owned plane range of `rank` (the last rank also owns the final
    /// plane when `starts` counts element layers).
    pub fn owned_planes(&self, rank: usize) -> std::ops::Range<usize> {
        let lo = self.starts[rank];
        let hi = if rank + 1 == self.num_ranks() {
            self.n_split
        } else {
            self.starts[rank + 1]
        };
        lo..hi
    }

    /// Element layers assigned to `rank` (FEM convention: one fewer layer
    /// than planes along the axis).
    pub fn owned_layers(&self, rank: usize) -> std::ops::Range<usize> {
        self.starts[rank]
            ..self.starts[rank + 1]
                .min(self.n_split - 1)
                .max(self.starts[rank])
    }
}

/// Row-major `[pre, split, post]` view of a field: `split` is the
/// partitioned axis, one plane is `pre` strided chunks of `post` scalars.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlabLayout {
    /// Product of the axes slower than the split axis.
    pub pre: usize,
    /// Extent of the split axis.
    pub split: usize,
    /// Product of the axes faster than the split axis.
    pub post: usize,
}

impl SlabLayout {
    /// Total scalars described by this layout.
    pub fn len(&self) -> usize {
        self.pre * self.split * self.post
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The same field with a different split extent (e.g. a carved slab).
    pub fn with_split(&self, split: usize) -> SlabLayout {
        SlabLayout { split, ..*self }
    }
}

/// Copies planes `[r0, r1)` of `src` (shaped by `layout`) into a fresh
/// contiguous `[pre, r1 - r0, post]` slab.
pub fn carve_planes<T: Copy>(src: &[T], layout: &SlabLayout, r0: usize, r1: usize) -> Vec<T> {
    assert_eq!(src.len(), layout.len(), "layout/source length mismatch");
    assert!(r0 <= r1 && r1 <= layout.split, "plane range out of bounds");
    let count = r1 - r0;
    let mut out = Vec::with_capacity(layout.pre * count * layout.post);
    for pre in 0..layout.pre {
        let base = (pre * layout.split + r0) * layout.post;
        out.extend_from_slice(&src[base..base + count * layout.post]);
    }
    out
}

/// Scatters a contiguous `[pre, count, post]` slab into planes starting at
/// `r0` of `dst` (shaped by `layout`). The inverse of [`carve_planes`].
pub fn place_planes<T: Copy>(dst: &mut [T], layout: &SlabLayout, r0: usize, slab: &[T]) {
    assert_eq!(
        dst.len(),
        layout.len(),
        "layout/destination length mismatch"
    );
    assert!(
        slab.len().is_multiple_of((layout.pre * layout.post).max(1)),
        "slab is not a whole number of planes"
    );
    let count = slab.len() / (layout.pre * layout.post);
    assert!(r0 + count <= layout.split, "slab overflows the split axis");
    for pre in 0..layout.pre {
        let base = (pre * layout.split + r0) * layout.post;
        dst[base..base + count * layout.post]
            .copy_from_slice(&slab[pre * count * layout.post..(pre + 1) * count * layout.post]);
    }
}

/// Stitches rank-ordered owned slabs (each `[pre, own_r, post]`) back into
/// one `[pre, Σ own_r, post]` field.
pub fn assemble_planes<T: Copy + Default>(slabs: &[Vec<T>], pre: usize, post: usize) -> Vec<T> {
    let plane = pre * post;
    let total: usize = slabs
        .iter()
        .map(|s| {
            assert!(
                s.len().is_multiple_of(plane.max(1)),
                "slab is not a whole number of planes"
            );
            s.len() / plane.max(1)
        })
        .sum();
    let layout = SlabLayout {
        pre,
        split: total,
        post,
    };
    let mut out = vec![T::default(); layout.len()];
    let mut at = 0usize;
    for slab in slabs {
        place_planes(&mut out, &layout, at, slab);
        at += slab.len() / plane.max(1);
    }
    out
}

/// An owned slab extended by the halo planes received from ring
/// neighbours: `data` is `[pre, lo + own + hi, post]` with the owned
/// planes at offset `lo`.
#[derive(Clone, Debug)]
pub struct ExtendedSlab<T = f64> {
    /// Extended slab contents.
    pub data: Vec<T>,
    /// Halo planes below the owned range (0 on rank 0).
    pub lo: usize,
    /// Halo planes above the owned range (0 on the last rank).
    pub hi: usize,
}

/// An in-flight halo exchange: the boundary planes have been posted to the
/// ring neighbours, the matching receives have not happened yet.
///
/// This is the overlap hook of the slab forward — between
/// [`exchange_post`] and [`PendingHalo::finish`] the caller is free to do
/// arbitrary local work (e.g. compute the interior output rows that depend
/// only on owned planes) while the neighbour planes are in flight.
#[derive(Debug)]
pub struct PendingHalo {
    /// Halo planes expected below the owned range (0 on rank 0).
    pub lo: usize,
    /// Halo planes expected above the owned range (0 on the last rank).
    pub hi: usize,
    /// Scalars per halo block (`pre · halo · post`).
    elems: usize,
    tag: u64,
}

impl PendingHalo {
    /// Blocks until both neighbour halo blocks have arrived and returns
    /// `(from_below, from_above)` — each a contiguous `[pre, halo, post]`
    /// slab, `None` on the respective domain edge.
    pub fn finish<T: HaloElement, C: Comm + ?Sized>(
        self,
        comm: &C,
    ) -> (Option<Vec<T>>, Option<Vec<T>>) {
        let rank = comm.rank();
        let above = (self.hi > 0).then(|| {
            let wire = comm.recv(rank + 1, self.tag);
            T::unpack_wire(&wire, self.elems)
        });
        let below = (self.lo > 0).then(|| {
            let wire = comm.recv(rank - 1, self.tag + 1);
            T::unpack_wire(&wire, self.elems)
        });
        (below, above)
    }
}

/// Posts this rank's `halo` boundary planes to each existing ring
/// neighbour (tags `tag` downward, `tag + 1` upward) without blocking,
/// returning the [`PendingHalo`] whose `finish` collects the neighbours'
/// planes. Requires `halo <= own` so each rank can feed its neighbours.
pub fn exchange_post<T: HaloElement, C: Comm + ?Sized>(
    comm: &C,
    local: &[T],
    layout: &SlabLayout,
    halo: usize,
    tag: u64,
) -> PendingHalo {
    let own = layout.split;
    assert_eq!(local.len(), layout.len(), "layout/slab length mismatch");
    assert!(
        halo <= own,
        "halo width {halo} exceeds the owned slab extent {own}"
    );
    let rank = comm.rank();
    let p = comm.size();
    if halo == 0 || p == 1 {
        return PendingHalo {
            lo: 0,
            hi: 0,
            elems: 0,
            tag,
        };
    }
    if rank > 0 {
        let planes = carve_planes(local, layout, 0, halo);
        comm.send(rank - 1, tag, T::pack_wire(&planes));
    }
    if rank + 1 < p {
        let planes = carve_planes(local, layout, own - halo, own);
        comm.send(rank + 1, tag + 1, T::pack_wire(&planes));
    }
    PendingHalo {
        lo: if rank > 0 { halo } else { 0 },
        hi: if rank + 1 < p { halo } else { 0 },
        elems: layout.pre * halo * layout.post,
        tag,
    }
}

/// One tagged halo exchange: sends this rank's `halo` boundary planes to
/// each existing ring neighbour (tags `tag` downward, `tag + 1` upward)
/// and returns the owned slab extended by the neighbours' boundary planes.
///
/// `local` is this rank's owned slab viewed as `[pre, own, post]` through
/// `layout` (`layout.split` = `own`). Every rank must call this with the
/// same `tag` in the same program order (collective-like discipline);
/// unbounded channels make the symmetric send-then-receive order safe.
/// Requires `halo <= own` so each rank can feed its neighbours. The
/// post-then-finish halves ([`exchange_post`], [`PendingHalo::finish`])
/// allow local compute to overlap the in-flight planes.
pub fn exchange_extend<T: HaloElement, C: Comm + ?Sized>(
    comm: &C,
    local: &[T],
    layout: &SlabLayout,
    halo: usize,
    tag: u64,
) -> ExtendedSlab<T> {
    let own = layout.split;
    let pending = exchange_post(comm, local, layout, halo, tag);
    let (lo, hi) = (pending.lo, pending.hi);
    if lo == 0 && hi == 0 {
        return ExtendedSlab {
            data: local.to_vec(),
            lo: 0,
            hi: 0,
        };
    }
    let ext = layout.with_split(lo + own + hi);
    let mut data = vec![T::default(); ext.len()];
    place_planes(&mut data, &ext, lo, local);
    let (from_below, from_above) = pending.finish::<T, C>(comm);
    if let Some(above) = from_above {
        place_planes(&mut data, &ext, lo + own, &above);
    }
    if let Some(below) = from_below {
        place_planes(&mut data, &ext, 0, &below);
    }
    ExtendedSlab { data, lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_comm::launch;

    #[test]
    fn fem_partition_covers_all_planes() {
        for n in [5usize, 9, 16] {
            for p in 1..=4.min(n - 1) {
                let part = SlabPartition::new(n, p).unwrap();
                let mut covered = vec![0usize; n];
                for r in 0..p {
                    for pl in part.owned_planes(r) {
                        covered[pl] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "n={n} p={p}: {covered:?}");
            }
        }
    }

    #[test]
    fn aligned_partition_tiles_with_aligned_slabs() {
        for (extent, p, align) in [(16usize, 2usize, 4usize), (24, 3, 4), (40, 5, 8), (8, 1, 8)] {
            let part = SlabPartition::aligned(extent, p, align).unwrap();
            assert_eq!(part.num_ranks(), p);
            let mut covered = 0usize;
            for r in 0..p {
                let owned = part.owned_planes(r);
                assert_eq!(owned.start, covered, "slabs must tile contiguously");
                assert!(!owned.is_empty());
                assert!(owned.len().is_multiple_of(align), "{owned:?} vs {align}");
                covered = owned.end;
            }
            assert_eq!(covered, extent);
        }
    }

    #[test]
    fn constructors_reject_bad_configs() {
        assert!(matches!(
            SlabPartition::new(9, 0),
            Err(PartitionError::Degenerate { .. })
        ));
        assert!(matches!(
            SlabPartition::new(5, 5),
            Err(PartitionError::OverDecomposed { units: 4, ranks: 5 })
        ));
        assert!(matches!(
            SlabPartition::aligned(12, 2, 8),
            Err(PartitionError::Misaligned {
                extent: 12,
                align: 8
            })
        ));
        assert!(matches!(
            SlabPartition::aligned(16, 5, 4),
            Err(PartitionError::OverDecomposed { units: 4, ranks: 5 })
        ));
        let msg = SlabPartition::aligned(16, 5, 4).unwrap_err().to_string();
        assert!(msg.contains("over-decomposed"), "{msg}");
    }

    #[test]
    fn carve_place_assemble_roundtrip() {
        let layout = SlabLayout {
            pre: 3,
            split: 5,
            post: 4,
        };
        let field: Vec<f64> = (0..layout.len()).map(|i| i as f64).collect();
        let part = SlabPartition::aligned(5, 5, 1).unwrap();
        let slabs: Vec<Vec<f64>> = (0..5)
            .map(|r| {
                let o = part.owned_planes(r);
                carve_planes(&field, &layout, o.start, o.end)
            })
            .collect();
        let back = assemble_planes(&slabs, layout.pre, layout.post);
        assert_eq!(back, field);
        // Uneven carve too.
        let a = carve_planes(&field, &layout, 0, 2);
        let b = carve_planes(&field, &layout, 2, 5);
        assert_eq!(assemble_planes(&[a, b], layout.pre, layout.post), field);
    }

    #[test]
    fn exchange_extends_with_neighbour_planes() {
        // 3 ranks, each owning 2 planes of a [pre=2, 6, post=3] field whose
        // value encodes the global plane index.
        let layout = SlabLayout {
            pre: 2,
            split: 6,
            post: 3,
        };
        let global: Vec<f64> = (0..layout.len())
            .map(|i| ((i / layout.post) % layout.split) as f64)
            .collect();
        let results = launch(3, |comm| {
            let r = comm.rank();
            let own = SlabLayout {
                pre: 2,
                split: 2,
                post: 3,
            };
            let local = carve_planes(&global, &layout, 2 * r, 2 * r + 2);
            let ext = exchange_extend(&comm, &local, &own, 1, 40);
            (r, ext)
        });
        for (r, ext) in results {
            let (lo, hi) = (ext.lo, ext.hi);
            assert_eq!(lo, usize::from(r > 0));
            assert_eq!(hi, usize::from(r < 2));
            let ext_layout = SlabLayout {
                pre: 2,
                split: lo + 2 + hi,
                post: 3,
            };
            // Every plane of the extended slab must carry its global index.
            for pre in 0..2 {
                for s in 0..ext_layout.split {
                    let global_plane = (2 * r + s) as f64 - lo as f64;
                    let base = (pre * ext_layout.split + s) * 3;
                    assert!(
                        ext.data[base..base + 3].iter().all(|&v| v == global_plane),
                        "rank {r} plane {s}: {:?}",
                        &ext.data[base..base + 3]
                    );
                }
            }
        }
    }

    #[test]
    fn exchange_with_zero_halo_is_identity() {
        let layout = SlabLayout {
            pre: 1,
            split: 3,
            post: 2,
        };
        let results = launch(2, |comm| {
            let local: Vec<f64> = (0..6).map(|i| (comm.rank() * 10 + i) as f64).collect();
            let ext = exchange_extend(&comm, &local, &layout, 0, 7);
            (local, ext)
        });
        for (local, ext) in results {
            assert_eq!(ext.data, local);
            assert_eq!((ext.lo, ext.hi), (0, 0));
        }
    }
}
