//! In-process ranks: threads, mailboxes, and pipelined ring collectives.

use crate::comm::Comm;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Messages are split into chunks of this many `f64`s so ring collectives
/// pipeline: while rank r reduces chunk c, rank r-1 already works on c+1.
const CHUNK_ELEMS: usize = 8192;

/// Tag bit reserved for internal collective traffic, keeping user
/// point-to-point tags (e.g. the FEM halo exchange) in a disjoint space.
const INTERNAL: u64 = 1 << 63;
const TAG_REDUCE: u64 = INTERNAL;
const TAG_BCAST: u64 = INTERNAL | 1;
const TAG_GATHER: u64 = INTERNAL | 2;

/// Mailbox key: (from, to, tag). FIFO per key.
type Key = (usize, usize, u64);

struct BarrierState {
    arrived: usize,
    generation: u64,
}

struct Shared {
    size: usize,
    mail: Mutex<HashMap<Key, VecDeque<Vec<f64>>>>,
    mail_cv: Condvar,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    /// Set when any rank panics, so peers blocked in `recv`/`barrier` fail
    /// fast instead of deadlocking.
    poisoned: AtomicBool,
}

impl Shared {
    /// Locks ignoring std mutex poisoning: a panicking rank must still be
    /// able to flag its peers (our own `poisoned` flag carries the state).
    fn lock_mail(&self) -> std::sync::MutexGuard<'_, HashMap<Key, VecDeque<Vec<f64>>>> {
        self.mail
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_barrier(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        self.barrier
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Lock-then-notify so sleeping waiters cannot miss the wakeup.
        drop(self.lock_mail());
        self.mail_cv.notify_all();
        drop(self.lock_barrier());
        self.barrier_cv.notify_all();
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("rank panicked: a peer rank died while this rank was communicating");
        }
    }
}

/// One rank of a `p`-way in-process communicator (paper §3.2's simulated
/// data-parallel workers). Create a full set with [`ThreadComm::ranks`] or
/// let [`launch`] manage threads and collection.
pub struct ThreadComm {
    rank: usize,
    shared: Arc<Shared>,
}

impl ThreadComm {
    /// Creates the `p` connected ranks of one communicator.
    pub fn ranks(p: usize) -> Vec<ThreadComm> {
        assert!(p >= 1, "need at least one rank");
        let shared = Arc::new(Shared {
            size: p,
            mail: Mutex::new(HashMap::new()),
            mail_cv: Condvar::new(),
            barrier: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            barrier_cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });
        (0..p)
            .map(|rank| ThreadComm {
                rank,
                shared: Arc::clone(&shared),
            })
            .collect()
    }

    /// Flags the communicator as poisoned so peer ranks blocked in
    /// collectives or `recv` unwind instead of deadlocking. Used by the
    /// persistent [`crate::SlabPool`], whose workers catch job panics
    /// instead of unwinding through a `PanicGuard`.
    pub(crate) fn poison(&self) {
        self.shared.poison();
    }

    fn post(&self, to: usize, tag: u64, data: Vec<f64>) {
        let mut mail = self.shared.lock_mail();
        mail.entry((self.rank, to, tag))
            .or_default()
            .push_back(data);
        drop(mail);
        self.shared.mail_cv.notify_all();
    }

    fn take(&self, from: usize, tag: u64) -> Vec<f64> {
        let key = (from, self.rank, tag);
        let mut mail = self.shared.lock_mail();
        loop {
            if self.shared.poisoned.load(Ordering::SeqCst) {
                // Release the lock before unwinding so peers (and this
                // rank's own PanicGuard) never see a poisoned mutex held.
                drop(mail);
                self.shared.check_poison();
                unreachable!("poisoned flag was set");
            }
            if let Some(msg) = mail.get_mut(&key).and_then(VecDeque::pop_front) {
                return msg;
            }
            mail = self
                .shared
                .mail_cv
                .wait(mail)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pipelined ring reduce-then-broadcast with a fixed reduction order.
    ///
    /// Reduce phase: chunks flow along the ring `0 → 1 → … → p-1`; rank r
    /// computes `acc = acc_{r-1} ⊕ own_r`, so the final value at rank `p-1`
    /// is the left-fold `((v₀ ⊕ v₁) ⊕ v₂) ⊕ …` — bitwise equal to the
    /// serial rank-order reduction. Broadcast phase: the result flows
    /// `p-1 → 0 → 1 → … → p-2`, each rank forwarding, so every rank ends
    /// with identical bytes. Per-rank traffic is ~2·n elements, matching
    /// the classic ring all-reduce's bandwidth behavior while keeping the
    /// reduction order deterministic.
    fn ring_allreduce(&self, buf: &mut [f64], op: impl Fn(f64, f64) -> f64) {
        let p = self.shared.size;
        if p == 1 || buf.is_empty() {
            return;
        }
        let r = self.rank;
        let chunk_starts: Vec<usize> = (0..buf.len()).step_by(CHUNK_ELEMS.max(1)).collect();
        // Reduce along the ring towards rank p-1.
        for &start in &chunk_starts {
            let end = (start + CHUNK_ELEMS).min(buf.len());
            if r > 0 {
                let incoming = self.take(r - 1, TAG_REDUCE);
                debug_assert_eq!(incoming.len(), end - start);
                for (own, acc) in buf[start..end].iter_mut().zip(&incoming) {
                    // `acc ⊕ own`: the accumulator stays on the left so the
                    // fold order matches the serial rank-order reduction.
                    *own = op(*acc, *own);
                }
            }
            if r + 1 < p {
                self.post(r + 1, TAG_REDUCE, buf[start..end].to_vec());
            }
        }
        // Broadcast the folded result from rank p-1 around the ring.
        for &start in &chunk_starts {
            let end = (start + CHUNK_ELEMS).min(buf.len());
            if r + 1 == p {
                self.post(0, TAG_BCAST, buf[start..end].to_vec());
            } else {
                let from = if r == 0 { p - 1 } else { r - 1 };
                let result = self.take(from, TAG_BCAST);
                buf[start..end].copy_from_slice(&result);
                if r + 1 < p - 1 {
                    self.post(r + 1, TAG_BCAST, result);
                }
            }
        }
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        self.ring_allreduce(buf, |acc, own| acc + own);
    }

    fn allreduce_max(&self, buf: &mut [f64]) {
        self.ring_allreduce(buf, f64::max);
    }

    fn allreduce_sum_naive(&self, buf: &mut [f64]) {
        // Gather-to-root baseline: every rank ships its full buffer to
        // rank 0, which folds in rank order and ships full copies back.
        // Same result as the ring, O(p·n) root traffic instead of O(n).
        let p = self.shared.size;
        if p == 1 || buf.is_empty() {
            return;
        }
        if self.rank == 0 {
            for from in 1..p {
                let incoming = self.take(from, TAG_GATHER);
                for (own, x) in buf.iter_mut().zip(&incoming) {
                    *own += x;
                }
            }
            for to in 1..p {
                self.post(to, TAG_BCAST, buf.to_vec());
            }
        } else {
            self.post(0, TAG_GATHER, buf.to_vec());
            let result = self.take(0, TAG_BCAST);
            buf.copy_from_slice(&result);
        }
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        let p = self.shared.size;
        assert!(root < p, "broadcast root {root} out of range for {p} ranks");
        if p == 1 {
            return;
        }
        if self.rank == root {
            for to in (0..p).filter(|&t| t != root) {
                self.post(to, TAG_BCAST, buf.to_vec());
            }
        } else {
            let data = self.take(root, TAG_BCAST);
            buf.copy_from_slice(&data);
        }
    }

    fn barrier(&self) {
        let mut state = self.shared.lock_barrier();
        let generation = state.generation;
        state.arrived += 1;
        if state.arrived == self.shared.size {
            state.arrived = 0;
            state.generation += 1;
            drop(state);
            self.shared.barrier_cv.notify_all();
            return;
        }
        while state.generation == generation {
            if self.shared.poisoned.load(Ordering::SeqCst) {
                drop(state);
                self.shared.check_poison();
                unreachable!("poisoned flag was set");
            }
            state = self
                .shared
                .barrier_cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.shared.size, "send to rank {to} out of range");
        assert_eq!(tag & INTERNAL, 0, "user tags must not set the internal bit");
        self.post(to, tag, data);
    }

    fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        assert!(
            from < self.shared.size,
            "recv from rank {from} out of range"
        );
        assert_eq!(tag & INTERNAL, 0, "user tags must not set the internal bit");
        self.take(from, tag)
    }
}

/// Notifies peers when a rank unwinds, so blocked ranks fail fast.
struct PanicGuard(Arc<Shared>);

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Runs `f` once per rank on `p` in-process ranks and returns the results
/// in rank order.
///
/// The closure receives its rank's [`ThreadComm`] by value. If any rank
/// panics, `launch` panics with a message containing `rank panicked`
/// (peers blocked in collectives are woken and unwound rather than
/// deadlocking).
pub fn launch<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Send + Sync,
{
    launch_with((0..p).map(|_| ()).collect(), |comm, ()| f(comm))
}

/// Like [`launch`], but moves one owned payload into each rank's closure.
///
/// `payloads.len()` determines the rank count; `payloads[r]` is handed to
/// rank `r` by value. This is how callers that own per-rank state (e.g. a
/// model replica and its optimizer for data-parallel training) ship it
/// across the thread boundary and get it back through the rank's return
/// value — a plain [`launch`] closure is `Fn` and can only borrow. Panic
/// semantics match [`launch`]: any rank panicking poisons the communicator
/// and surfaces as a `rank panicked` panic in the caller.
pub fn launch_with<T, R, F>(payloads: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(ThreadComm, T) -> R + Send + Sync,
{
    let comms = ThreadComm::ranks(payloads.len());
    let shared = Arc::clone(&comms[0].shared);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = comms
            .into_iter()
            .zip(payloads)
            .map(|(comm, payload)| {
                let guard_shared = Arc::clone(&shared);
                crate::pool::note_rank_spawn();
                s.spawn(move || {
                    let _guard = PanicGuard(guard_shared);
                    f(comm, payload)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(result) => result,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&'static str>().copied())
                        .unwrap_or("non-string panic payload");
                    panic!("rank panicked (rank {rank}): {msg}");
                }
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serial left-fold reference: rank-order sum per element.
    fn serial_fold(p: usize, n: usize, value: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut acc = value(0, i);
                for r in 1..p {
                    acc += value(r, i);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn allreduce_sum_matches_serial_fold_bitwise_for_1_to_4_ranks() {
        // Awkward magnitudes so any reordering of the fold would change
        // low-order bits; sizes straddle the pipeline chunk boundary.
        let value = |r: usize, i: usize| {
            (1.0 + r as f64).powi(3) * 1e-3 + (i as f64 * 0.7183).sin() * 10.0_f64.powi(r as i32)
        };
        for p in 1..=4usize {
            for n in [1usize, 5, CHUNK_ELEMS - 1, CHUNK_ELEMS + 3] {
                let results = launch(p, |comm| {
                    let mut buf: Vec<f64> = (0..n).map(|i| value(comm.rank(), i)).collect();
                    comm.allreduce_sum(&mut buf);
                    buf
                });
                let expect = serial_fold(p, n, value);
                for (rank, buf) in results.iter().enumerate() {
                    for i in 0..n {
                        assert_eq!(
                            buf[i].to_bits(),
                            expect[i].to_bits(),
                            "p={p} n={n} rank={rank} element {i}: {} != {}",
                            buf[i],
                            expect[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn naive_allreduce_matches_ring_bitwise() {
        let value = |r: usize, i: usize| ((r * 37 + i * 11) % 23) as f64 * 0.37 - 3.0;
        for p in 2..=4usize {
            let n = 257;
            let ring = launch(p, |comm| {
                let mut buf: Vec<f64> = (0..n).map(|i| value(comm.rank(), i)).collect();
                comm.allreduce_sum(&mut buf);
                buf
            });
            let naive = launch(p, |comm| {
                let mut buf: Vec<f64> = (0..n).map(|i| value(comm.rank(), i)).collect();
                comm.allreduce_sum_naive(&mut buf);
                buf
            });
            for (a, b) in ring[0].iter().zip(&naive[0]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn allreduce_max_takes_elementwise_maximum() {
        let results = launch(3, |comm| {
            let r = comm.rank() as f64;
            let mut buf = vec![r, -r, 10.0 - r];
            comm.allreduce_max(&mut buf);
            buf
        });
        for buf in &results {
            assert_eq!(buf, &vec![2.0, 0.0, 10.0]);
        }
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let results = launch(4, |comm| comm.rank() * 100);
        assert_eq!(results, vec![0, 100, 200, 300]);
    }

    #[test]
    fn launch_with_moves_one_payload_per_rank() {
        // Owned (non-Clone-requiring) payloads go in; each rank gets its
        // own by value, collectives still work, and payloads come back
        // through the rank-ordered results.
        let payloads: Vec<Vec<f64>> = (0..3).map(|r| vec![r as f64; 4]).collect();
        let results = launch_with(payloads, |comm, mut own| {
            comm.allreduce_sum(&mut own);
            (comm.rank(), own)
        });
        for (r, (rank, buf)) in results.iter().enumerate() {
            assert_eq!(*rank, r);
            assert!(buf.iter().all(|&x| x == 3.0), "{buf:?}");
        }
    }

    #[test]
    fn send_recv_is_fifo_per_tag() {
        let results = launch(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0]);
                comm.send(1, 7, vec![2.0]);
                comm.send(1, 9, vec![9.0]);
                Vec::new()
            } else {
                // Tag 9 is ready regardless of tag 7's queue.
                let c = comm.recv(0, 9);
                let a = comm.recv(0, 7);
                let b = comm.recv(0, 7);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 9.0]);
    }

    #[test]
    fn barrier_separates_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        launch(4, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 4 arrivals.
            if before.load(Ordering::SeqCst) != 4 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
            comm.barrier();
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = launch(3, |comm| {
            let mut buf = vec![comm.rank() as f64; 4];
            comm.broadcast(2, &mut buf);
            buf
        });
        for buf in &results {
            assert!(buf.iter().all(|&x| x == 2.0), "{buf:?}");
        }
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn panic_on_one_rank_propagates_to_caller() {
        launch(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure on rank 1");
            }
            // Rank 0 blocks in a collective; poisoning must unwind it
            // instead of deadlocking the test.
            let mut buf = vec![0.0; 16];
            comm.allreduce_sum(&mut buf);
        });
    }
}
