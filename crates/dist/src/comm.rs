//! The communicator trait and the serial (size-1) implementation.

/// Collective and point-to-point communication between `p` ranks.
///
/// The interface mirrors the slice of MPI the paper's training loop and
/// slab-decomposed FEM solver need. Collectives must be called by every
/// rank in the same program order (MPI semantics); point-to-point messages
/// between a `(from, to, tag)` triple are delivered in FIFO order.
///
/// All collectives are **rank-order deterministic**: the reduction order of
/// `allreduce_sum` is the left-fold `((v₀ + v₁) + v₂) + …`, so results are
/// bitwise identical on every rank and reproducible across runs — the
/// property behind the paper's Eq. 15 worker-count-independence guarantee
/// (up to the reduction-order difference against serial summation of a
/// differently-sharded batch).
pub trait Comm {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Element-wise sum of `buf` across all ranks, in place on every rank.
    fn allreduce_sum(&self, buf: &mut [f64]);

    /// Element-wise maximum of `buf` across all ranks, in place.
    fn allreduce_max(&self, buf: &mut [f64]);

    /// Gather-to-root baseline for the ring all-reduce (kept for the
    /// `mgd-bench` collective ablation; same result, worse scaling).
    fn allreduce_sum_naive(&self, buf: &mut [f64]) {
        self.allreduce_sum(buf);
    }

    /// Replaces `buf` on every rank with `root`'s contents.
    fn broadcast(&self, root: usize, buf: &mut [f64]);

    /// Blocks until every rank has entered the barrier.
    fn barrier(&self);

    /// Sends `data` to rank `to` under `tag` (non-blocking, unbounded).
    fn send(&self, to: usize, tag: u64, data: Vec<f64>);

    /// Receives the next message from rank `from` under `tag` (blocking).
    fn recv(&self, from: usize, tag: u64) -> Vec<f64>;
}

/// The serial communicator: one rank, every collective a no-op.
///
/// Serial training and solving are the `p = 1` special case of the
/// distributed code path, so they use this type rather than a separate
/// implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalComm;

impl LocalComm {
    /// Creates the size-1 communicator.
    pub fn new() -> Self {
        LocalComm
    }
}

impl Comm for LocalComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn allreduce_sum(&self, _buf: &mut [f64]) {}

    fn allreduce_max(&self, _buf: &mut [f64]) {}

    fn broadcast(&self, root: usize, _buf: &mut [f64]) {
        assert_eq!(root, 0, "LocalComm has a single rank");
    }

    fn barrier(&self) {}

    fn send(&self, to: usize, _tag: u64, _data: Vec<f64>) {
        panic!("LocalComm cannot send (to rank {to}): there are no peers");
    }

    fn recv(&self, from: usize, _tag: u64) -> Vec<f64> {
        panic!("LocalComm cannot recv (from rank {from}): there are no peers");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_comm_is_serial_identity() {
        let c = LocalComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        let mut buf = vec![1.0, -2.0, 3.5];
        let orig = buf.clone();
        c.allreduce_sum(&mut buf);
        assert_eq!(buf, orig);
        c.allreduce_max(&mut buf);
        assert_eq!(buf, orig);
        c.allreduce_sum_naive(&mut buf);
        assert_eq!(buf, orig);
        c.broadcast(0, &mut buf);
        assert_eq!(buf, orig);
        c.barrier();
    }

    #[test]
    #[should_panic(expected = "no peers")]
    fn local_comm_send_panics() {
        LocalComm::new().send(1, 0, vec![1.0]);
    }
}
