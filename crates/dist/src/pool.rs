//! Persistent rank pool: long-lived worker threads + per-request jobs.
//!
//! [`launch`](crate::launch) spawns `p` OS threads per call, which is fine
//! for training (one call per run) but dominates latency when every
//! `predict` re-creates the rank fleet. A [`SlabPool`] spawns the ranks
//! once — each worker owns its [`ThreadComm`] rank plus caller-provided
//! per-rank state (model handles, workspaces) — and then dispatches
//! closures to all ranks per request, collecting rank-ordered results.
//! Panic semantics match `launch`: a panicking job poisons the
//! communicator so peers blocked in collectives unwind, and the caller
//! sees a `rank panicked` panic; the pool is then permanently poisoned.

use crate::comm::Comm;
use crate::thread_comm::ThreadComm;
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Total rank threads ever spawned in this process — by [`SlabPool`]s and
/// by the per-call [`crate::launch`]/[`crate::launch_with`] entry points.
///
/// Tests use this to assert that repeated requests reuse a pool instead of
/// respawning ranks: the counter must not move between two dispatches.
static TOTAL_RANK_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Returns the process-wide count of rank worker threads ever spawned.
pub fn total_rank_spawns() -> u64 {
    TOTAL_RANK_SPAWNS.load(Ordering::Relaxed)
}

/// Records one rank-thread spawn (pool workers and `launch_with` ranks).
pub(crate) fn note_rank_spawn() {
    TOTAL_RANK_SPAWNS.fetch_add(1, Ordering::Relaxed);
}

/// A job is one closure instance per rank; results are type-erased so the
/// worker loop is monomorphic in the per-rank state only.
type Job<S> = Box<dyn FnOnce(&ThreadComm, &mut S) -> Box<dyn Any + Send> + Send>;
type RankResult = (usize, std::thread::Result<Box<dyn Any + Send>>);

/// A persistent `p`-rank worker pool over [`ThreadComm`].
///
/// Each worker thread owns one rank of a shared communicator plus one
/// caller-provided state value `S` (created once, mutated across
/// requests — this is where slab models and reusable workspaces live).
/// [`SlabPool::run`] sends one closure to every rank and blocks until all
/// ranks return, yielding rank-ordered results.
pub struct SlabPool<S> {
    job_txs: Vec<Sender<Job<S>>>,
    result_rx: Receiver<RankResult>,
    handles: Vec<JoinHandle<()>>,
    dispatches: u64,
    poisoned: bool,
}

impl<S: Send + 'static> SlabPool<S> {
    /// Spawns one long-lived worker per entry of `states`; worker `r`
    /// owns rank `r` of a fresh communicator and `states[r]`.
    pub fn new(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "need at least one rank");
        let comms = ThreadComm::ranks(states.len());
        let (result_tx, result_rx) = channel::<RankResult>();
        let mut job_txs = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for (comm, state) in comms.into_iter().zip(states) {
            let (job_tx, job_rx) = channel::<Job<S>>();
            let result_tx = result_tx.clone();
            note_rank_spawn();
            handles.push(std::thread::spawn(move || {
                worker(comm, state, job_rx, result_tx);
            }));
            job_txs.push(job_tx);
        }
        SlabPool {
            job_txs,
            result_rx,
            handles,
            dispatches: 0,
            poisoned: false,
        }
    }

    /// Number of ranks in the pool.
    pub fn ranks(&self) -> usize {
        self.job_txs.len()
    }

    /// Number of requests this pool has served.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Runs `f` once per rank (against that rank's comm and state) and
    /// returns rank-ordered results. Blocks until every rank finishes.
    ///
    /// Panics with `rank panicked` if any rank's job panics; the pool is
    /// then poisoned and refuses further requests (the shared
    /// communicator cannot be un-poisoned).
    pub fn run<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&ThreadComm, &mut S) -> R + Send + Sync + 'static,
    {
        assert!(
            !self.poisoned,
            "slab pool poisoned by an earlier rank panic"
        );
        let f = Arc::new(f);
        for tx in &self.job_txs {
            let f = Arc::clone(&f);
            let job: Job<S> =
                Box::new(move |comm, state| Box::new(f(comm, state)) as Box<dyn Any + Send>);
            tx.send(job).expect("pool worker thread died");
        }
        self.dispatches += 1;
        let mut slots: Vec<Option<R>> = (0..self.ranks()).map(|_| None).collect();
        let mut failure: Option<(usize, String)> = None;
        // Every rank sends exactly one result per request (panics are
        // caught in the worker), so collecting `ranks` messages cannot
        // hang even when some ranks fail.
        for _ in 0..self.ranks() {
            let (rank, result) = self
                .result_rx
                .recv()
                .expect("pool worker thread died mid-request");
            match result {
                Ok(boxed) => {
                    slots[rank] = Some(*boxed.downcast::<R>().expect("job result type"));
                }
                Err(payload) => {
                    self.poisoned = true;
                    if failure.is_none() {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&'static str>().copied())
                            .unwrap_or("non-string panic payload");
                        failure = Some((rank, msg.to_string()));
                    }
                }
            }
        }
        if let Some((rank, msg)) = failure {
            panic!("rank panicked (rank {rank}): {msg}");
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every rank reported"))
            .collect()
    }
}

impl<S> Drop for SlabPool<S> {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's receive loop.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker<S>(comm: ThreadComm, mut state: S, jobs: Receiver<Job<S>>, results: Sender<RankResult>) {
    let rank = comm.rank();
    while let Ok(job) = jobs.recv() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| job(&comm, &mut state)));
        if result.is_err() {
            // Wake peers blocked in collectives so they fail this request
            // too instead of deadlocking; the pool is poisoned for good.
            comm.poison();
        }
        if results.send((rank, result)).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;

    #[test]
    fn pool_runs_collectives_and_returns_rank_ordered_results() {
        let mut pool = SlabPool::new(vec![10usize, 20, 30]);
        let out = pool.run(|comm, state| {
            let mut buf = vec![comm.rank() as f64; 4];
            comm.allreduce_sum(&mut buf);
            (comm.rank(), *state, buf[0])
        });
        assert_eq!(out, vec![(0, 10, 3.0), (1, 20, 3.0), (2, 30, 3.0)]);
    }

    #[test]
    fn pool_reuses_ranks_across_requests_and_keeps_state() {
        let spawned_before = total_rank_spawns();
        let mut pool = SlabPool::new(vec![0u64; 4]);
        assert_eq!(total_rank_spawns(), spawned_before + 4);
        for round in 1..=5u64 {
            let counts = pool.run(|_comm, state| {
                *state += 1;
                *state
            });
            assert_eq!(counts, vec![round; 4]);
        }
        // Five requests, zero new threads.
        assert_eq!(total_rank_spawns(), spawned_before + 4);
        assert_eq!(pool.dispatches(), 5);
    }

    #[test]
    fn pool_point_to_point_matches_launch_semantics() {
        let mut pool = SlabPool::new(vec![(); 2]);
        let out = pool.run(|comm, ()| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![42.0]);
                0.0
            } else {
                comm.recv(0, 7)[0]
            }
        });
        assert_eq!(out, vec![0.0, 42.0]);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn pool_propagates_rank_panics_without_deadlock() {
        let mut pool = SlabPool::new(vec![(); 2]);
        pool.run(|comm, ()| {
            if comm.rank() == 1 {
                panic!("deliberate failure on rank 1");
            }
            // Rank 0 blocks in a collective; poisoning must unwind it.
            let mut buf = vec![0.0; 16];
            comm.allreduce_sum(&mut buf);
        });
    }
}
