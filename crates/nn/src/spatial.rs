//! Slab-decomposed (spatial model-parallel) U-Net inference.
//!
//! The paper's §5 outlook — "scaling beyond megavoxels to gigavoxels" via
//! "model-parallel distributed deep learning" — needs the *network*, not
//! just the FEM solver, to run without any rank ever materializing a
//! full-resolution activation. This module implements that forward path:
//! the input field is carved into `p` contiguous slabs along its slowest
//! non-unit spatial axis (depth for 3D problems, height for 2D), each rank
//! walks the whole U-Net on its slab, and thin halo planes are exchanged
//! over a [`Comm`] right before every stencil application.
//!
//! ## Halo-width rule
//!
//! Only the `same`-padded stencil convolutions couple neighbouring planes
//! along the split axis, and their reach is exactly the padding `(k-1)/2`
//! — one plane for the U-Net's 3×3×3 blocks. [`infer_slab`] therefore
//! exchanges one halo plane per side before each `Conv3d` (encoder,
//! bottleneck and merge blocks) and computes **only the owned output
//! planes** through the restricted im2col/GEMM lowering
//! ([`Conv3d::infer_planes_into`]). Every owned output element then sees
//! exactly the operand values the serial pass sees, in the same
//! accumulation order, so the assembled result is **bitwise identical** to
//! the serial forward at any rank count. All other layers are local:
//! `MaxPool3d`/`ConvTranspose3d` with `k = s = 2` never straddle a cut
//! (see the alignment rule), batch norm at inference is a per-channel
//! affine map from running statistics, activations are pointwise, and the
//! 1×1×1 head has zero reach.
//!
//! ## Halo/compute overlap
//!
//! With [`SlabOpts::overlap`] (the default), each halo conv posts its
//! boundary planes ([`mgd_dist::exchange_post`]) and immediately computes
//! the *interior* output planes from the unextended local slab — those
//! planes read only owned input (plus the true zero padding on domain-edge
//! ranks), so no copy into a halo-extended buffer is needed and the bits
//! match the serial pass. When the neighbour planes arrive, the two
//! boundary row-bands are computed from thin `3·halo`-plane band tensors
//! and written into the same output. This removes the full-slab
//! extend-copy from the critical path (the dominant overhead of the
//! non-overlapped walk) and lets the interior GEMM run while planes are in
//! flight on true multi-worker transports. Slabs shallower than `2·halo`
//! planes at some level fall back to the classic extend-then-restrict
//! exchange, which remains bitwise identical.
//!
//! ## Pool-alignment rule
//!
//! Slab sizes must be positive multiples of `2^depth` along the split
//! axis ([`mgd_dist::SlabPartition::aligned`]) so that every factor-2
//! pool/upsample boundary at every level lands on a slab cut; the slab
//! then stays a whole number of (even) planes at all `depth + 1` levels
//! and pooling/upsampling remain rank-local. Violations are caught as
//! typed errors at engine-build time, and [`infer_slab`] re-asserts
//! them defensively.
//!
//! ## Out-of-core streaming
//!
//! With [`SlabOpts::spill_dir`] set, each encoder skip tensor is written
//! to a scratch file the moment it is produced and read back right before
//! the decoder concatenates it — the skips are exactly the long-lived
//! half of the forward's footprint, so spilling them caps the per-rank
//! resident set near the largest single-level working set and lets a rank
//! serve slabs whose full activation ladder would not fit in memory.
//! Spill files round-trip bit-exactly (wire-format packing), so results
//! are unchanged, and the I/O streams through bounded ~8 MiB chunk
//! buffers on both the write and read side — the read side decodes
//! straight into the decoder's concat buffer — so spilling never adds a
//! tensor-sized transient of its own.
//!
//! Per-rank activation memory is modeled by [`activation_peak_elems_opts`]
//! (live-tensor peak, per mode); [`measured_peak_elems`] reports the
//! instrumented live peak of the most recent [`infer_slab`] walks so
//! serving harnesses can check the model against reality.

use crate::conv::Conv3d;
use crate::layer::Dims5;
use crate::unet::{concat_channels, ConvBlock, UNet, UNetConfig};
use crate::workspace::Workspace;
use mgd_dist::{
    carve_planes, exchange_extend, exchange_post, place_planes, Comm, HaloElement, SlabLayout,
};
use mgd_tensor::{GemmElement, Tensor};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Which NCDHW axis a spatial decomposition splits.
///
/// 3D problems split the depth (z) axis; 2D problems — whose tensors carry
/// a unit depth axis — split the height axis. Both map onto the same
/// `[pre, split, post]` plane arithmetic of [`mgd_dist::halo`] and the
/// same flattened `(o_d, o_h)` anchor-row ranges of the GEMM lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitAxis {
    /// Split along the depth axis (3D problems).
    Depth,
    /// Split along the height axis (2D problems; requires `d == 1`).
    Height,
}

impl SplitAxis {
    /// The `[pre, split, post]` view of an NCDHW tensor split along this
    /// axis.
    pub fn layout(&self, d: &Dims5) -> SlabLayout {
        match self {
            SplitAxis::Depth => SlabLayout {
                pre: d.n * d.c,
                split: d.d,
                post: d.h * d.w,
            },
            SplitAxis::Height => {
                assert_eq!(d.d, 1, "height split needs a unit depth axis");
                SlabLayout {
                    pre: d.n * d.c,
                    split: d.h,
                    post: d.w,
                }
            }
        }
    }

    /// Extent of the split axis in `d`.
    pub fn extent(&self, d: &Dims5) -> usize {
        match self {
            SplitAxis::Depth => d.d,
            SplitAxis::Height => d.h,
        }
    }
}

impl UNet {
    /// The axis [`infer_slab`] splits for this architecture.
    pub fn split_axis(&self) -> SplitAxis {
        if self.cfg.two_d {
            SplitAxis::Height
        } else {
            SplitAxis::Depth
        }
    }
}

impl<E: mgd_tensor::Element> UNet<E> {
    /// [`UNet::split_axis`], available at any inference element type.
    pub fn split_axis_of(&self) -> SplitAxis {
        if self.cfg.two_d {
            SplitAxis::Height
        } else {
            SplitAxis::Depth
        }
    }
}

/// Tuning knobs of the slab-decomposed forward. All settings preserve the
/// bitwise (at `f64`) equivalence with the serial forward — they trade
/// memory and latency, never values.
#[derive(Clone, Debug)]
pub struct SlabOpts {
    /// Post halo sends and compute interior planes while the neighbour
    /// planes are in flight (default `true`); `false` restores the
    /// extend-then-restrict exchange on every conv.
    pub overlap: bool,
    /// When set, encoder skip tensors are spilled to scratch files in this
    /// directory and re-loaded by the decoder — the out-of-core streaming
    /// mode for domains whose activation ladder exceeds memory.
    pub spill_dir: Option<PathBuf>,
}

impl Default for SlabOpts {
    fn default() -> Self {
        SlabOpts {
            overlap: true,
            spill_dir: None,
        }
    }
}

/// Instrumented per-rank live-activation peak (elements) since the last
/// [`reset_measured_peak`], maxed across every [`infer_slab`] walk of
/// every rank.
static MEASURED_PEAK: AtomicUsize = AtomicUsize::new(0);

/// Resets the instrumented activation-peak tracker.
pub fn reset_measured_peak() {
    MEASURED_PEAK.store(0, Ordering::Relaxed);
}

/// Largest per-rank live-activation element count any [`infer_slab`] walk
/// reached since the last [`reset_measured_peak`]. Counts the same tensor
/// population as [`activation_peak_elems_opts`] (activations only — no
/// weights, GEMM workspace, or assembled I/O fields), so the model can be
/// asserted against it.
pub fn measured_peak_elems() -> usize {
    MEASURED_PEAK.load(Ordering::Relaxed)
}

/// Running live-element counter for one rank's walk.
#[derive(Default)]
struct PeakMeter {
    live: usize,
}

impl PeakMeter {
    fn alloc(&mut self, elems: usize) {
        self.live += elems;
        MEASURED_PEAK.fetch_max(self.live, Ordering::Relaxed);
    }

    fn free(&mut self, elems: usize) {
        self.live = self.live.saturating_sub(elems);
    }
}

/// Halo width and owned split extent of a `same` stencil conv on `d`.
fn conv_halo<E: mgd_tensor::Element>(
    conv: &Conv3d<E>,
    d: &Dims5,
    axis: SplitAxis,
) -> (usize, usize) {
    match axis {
        SplitAxis::Depth => {
            assert_eq!(conv.stride.0, 1, "spatial split needs stride 1 along depth");
            assert_eq!(
                conv.kernel.0,
                2 * conv.padding.0 + 1,
                "spatial split needs a symmetric same-conv along depth"
            );
            (conv.padding.0, d.d)
        }
        SplitAxis::Height => {
            assert_eq!(d.d, 1, "height split needs a unit depth axis");
            assert_eq!(
                conv.stride.1, 1,
                "spatial split needs stride 1 along height"
            );
            assert_eq!(
                conv.kernel.1,
                2 * conv.padding.1 + 1,
                "spatial split needs a symmetric same-conv along height"
            );
            (conv.padding.1, d.h)
        }
    }
}

/// Builds the `3·halo`-plane boundary band: `recv` planes on the domain
/// side plus the `2·halo` nearest owned planes of `x`.
fn band_tensor<E: GemmElement>(
    x: &Tensor<E>,
    layout: &SlabLayout,
    axis: SplitAxis,
    d: &Dims5,
    halo: usize,
    recv: &[E],
    recv_below: bool,
) -> Tensor<E> {
    let own = layout.split;
    let band_layout = layout.with_split(3 * halo);
    let mut data = vec![E::ZERO; band_layout.len()];
    if recv_below {
        let own_planes = carve_planes(x.as_slice(), layout, 0, 2 * halo);
        place_planes(&mut data, &band_layout, 0, recv);
        place_planes(&mut data, &band_layout, halo, &own_planes);
    } else {
        let own_planes = carve_planes(x.as_slice(), layout, own - 2 * halo, own);
        place_planes(&mut data, &band_layout, 0, &own_planes);
        place_planes(&mut data, &band_layout, 2 * halo, recv);
    }
    let dims = match axis {
        SplitAxis::Depth => vec![d.n, d.c, 3 * halo, d.h, d.w],
        SplitAxis::Height => vec![d.n, d.c, 1, 3 * halo, d.w],
    };
    Tensor::from_vec(dims, data)
}

/// Exchanges the conv's halo planes with ring neighbours and computes the
/// owned output planes of a `same` stencil convolution — overlapping the
/// interior compute with the in-flight planes when enabled.
#[allow(clippy::too_many_arguments)]
fn halo_conv_infer<E: GemmElement + HaloElement>(
    conv: &Conv3d<E>,
    x: &Tensor<E>,
    comm: &dyn Comm,
    axis: SplitAxis,
    tag: &mut u64,
    ws: &mut Workspace<E>,
    opts: &SlabOpts,
    meter: &mut PeakMeter,
) -> Tensor<E> {
    let d = Dims5::of(x);
    let (halo, own) = conv_halo(conv, &d, axis);
    if comm.size() == 1 || halo == 0 {
        // No neighbours (or no reach): the slab is self-contained.
        let y = conv.infer(x, ws);
        meter.alloc(y.len());
        return y;
    }
    let t = *tag;
    *tag += 2;
    let layout = axis.layout(&d);
    if opts.overlap && own >= 2 * halo {
        // Post the boundary planes, then compute the interior while they
        // are in flight. Interior output planes `lo..own-hi` read only
        // owned input planes (plus the true domain padding on edge
        // ranks), so the unextended slab yields serial-identical bits.
        let pending = exchange_post(comm, x.as_slice(), &layout, halo, t);
        let (lo, hi) = (pending.lo, pending.hi);
        let odims = match axis {
            SplitAxis::Depth => vec![d.n, conv.out_c, own, d.h, d.w],
            SplitAxis::Height => vec![d.n, conv.out_c, 1, own, d.w],
        };
        let mut y: Tensor<E> = Tensor::zeros(odims);
        meter.alloc(y.len());
        conv.infer_planes_into(x, lo..own - hi, axis, &mut y, lo, ws);
        // Boundary bands on arrival: each band input is the received halo
        // plus the 2·halo nearest owned planes, and its `halo..2·halo`
        // output planes never read the band's artificial zero padding —
        // bitwise equal to the serial planes they fill in.
        let (below, above) = pending.finish(comm);
        if let Some(below) = below {
            let band = band_tensor(x, &layout, axis, &d, halo, &below, true);
            meter.alloc(band.len());
            conv.infer_planes_into(&band, halo..2 * halo, axis, &mut y, 0, ws);
            meter.free(band.len());
        }
        if let Some(above) = above {
            let band = band_tensor(x, &layout, axis, &d, halo, &above, false);
            meter.alloc(band.len());
            conv.infer_planes_into(&band, halo..2 * halo, axis, &mut y, own - halo, ws);
            meter.free(band.len());
        }
        return y;
    }
    // Fallback (overlap disabled, or the slab is shallower than 2·halo at
    // this level): classic extend-then-restrict exchange.
    let ext = exchange_extend(comm, x.as_slice(), &layout, halo, t);
    let (lo, hi) = (ext.lo, ext.hi);
    let ext_dims = match axis {
        SplitAxis::Depth => vec![d.n, d.c, lo + d.d + hi, d.h, d.w],
        SplitAxis::Height => vec![d.n, d.c, 1, lo + d.h + hi, d.w],
    };
    let x_ext = Tensor::from_vec(ext_dims, ext.data);
    meter.alloc(x_ext.len());
    let y = conv.infer_planes(&x_ext, lo..lo + own, axis, ws);
    meter.alloc(y.len());
    meter.free(x_ext.len());
    y
}

/// One Conv → (BatchNorm) → LeakyReLU block with halo exchange before the
/// stencil. Batch norm runs in inference mode (running statistics — a
/// rank-local per-channel affine map), so no cross-rank statistics are
/// needed.
#[allow(clippy::too_many_arguments)]
fn halo_block_infer<E: GemmElement + HaloElement>(
    block: &ConvBlock<E>,
    x: Tensor<E>,
    comm: &dyn Comm,
    axis: SplitAxis,
    tag: &mut u64,
    ws: &mut Workspace<E>,
    opts: &SlabOpts,
    meter: &mut PeakMeter,
) -> Tensor<E> {
    let mut h = halo_conv_infer(&block.conv, &x, comm, axis, tag, ws, opts, meter);
    // The input is dead once the stencil has consumed it; dropping it here
    // (instead of after the block returns) keeps the fused bn/act pass
    // from holding input + conv output resident at once.
    meter.free(x.len());
    drop(x);
    // Batch norm + activation fused into one in-place walk over the conv
    // output — bitwise identical to the two-tensor pipeline, but with no
    // extra allocations and two fewer full read/write passes per block.
    block.finish_inplace(&mut h);
    h
}

/// Monotone spill-file nonce, so concurrent walks sharing one scratch dir
/// never collide.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// An encoder skip tensor awaiting its decoder level: resident in memory,
/// or spilled to a scratch file (out-of-core streaming mode).
enum Skip<E: mgd_tensor::Element> {
    Resident(Tensor<E>),
    Spilled { path: PathBuf, dims: Vec<usize> },
}

/// Elements per spill I/O chunk. Spill files are written and read as a
/// sequence of independently wire-packed chunks of this many elements, so
/// the transient pack/unpack buffers stay bounded (~8 MiB of wire words)
/// no matter how large the skip tensor is — a whole-payload `Vec` here
/// would silently add a full tensor-size resident spike per rank that the
/// activation meter never sees. Even, so f32 pair-packing never splits a
/// wire word across chunks.
const SPILL_CHUNK_ELEMS: usize = 1 << 20;

/// Writes `vals` to `w` as chunked wire words (see [`SPILL_CHUNK_ELEMS`]).
fn write_spill_stream<E: HaloElement>(w: &mut impl Write, vals: &[E], path: &Path) {
    let mut bytes = Vec::with_capacity(8 * E::wire_words(SPILL_CHUNK_ELEMS.min(vals.len())));
    for chunk in vals.chunks(SPILL_CHUNK_ELEMS) {
        let wire = E::pack_wire(chunk);
        bytes.clear();
        for word in &wire {
            bytes.extend_from_slice(&word.to_bits().to_le_bytes());
        }
        w.write_all(&bytes)
            .unwrap_or_else(|e| panic!("skip spill to {} failed: {e}", path.display()));
    }
}

/// Fills `out` from `r`, expecting the chunked wire layout written by
/// [`write_spill_stream`] for a payload of exactly `out.len()` elements.
fn read_spill_stream<E: HaloElement>(r: &mut impl Read, out: &mut [E], path: &Path) {
    let mut bytes = vec![0u8; 8 * E::wire_words(SPILL_CHUNK_ELEMS.min(out.len().max(1)))];
    let mut wire = Vec::with_capacity(E::wire_words(SPILL_CHUNK_ELEMS.min(out.len().max(1))));
    for chunk in out.chunks_mut(SPILL_CHUNK_ELEMS) {
        let nbytes = 8 * E::wire_words(chunk.len());
        r.read_exact(&mut bytes[..nbytes])
            .unwrap_or_else(|e| panic!("skip load from {} failed: {e}", path.display()));
        wire.clear();
        wire.extend(
            bytes[..nbytes]
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()))),
        );
        chunk.copy_from_slice(&E::unpack_wire(&wire, chunk.len()));
    }
}

impl<E: GemmElement + HaloElement> Skip<E> {
    /// Streams `h` to a scratch file via the bit-exact wire packing,
    /// holding only one bounded chunk buffer beyond the tensor itself.
    fn spill(h: &Tensor<E>, dir: &Path, rank: usize) -> Self {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("mgd-skip-r{rank}-{seq}.bin"));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("skip spill to {} failed: {e}", path.display()));
        let mut w = std::io::BufWriter::new(file);
        write_spill_stream(&mut w, h.as_slice(), &path);
        w.flush()
            .unwrap_or_else(|e| panic!("skip spill to {} failed: {e}", path.display()));
        Skip::Spilled {
            path,
            dims: h.dims().to_vec(),
        }
    }
}

/// Concatenates `h` with a skip along the channel axis, consuming the skip.
///
/// The streaming (spilled) arm keeps the peak at `h + cat` / `cat + skip`
/// instead of `h + skip + cat`: `h`'s channels are copied into the concat
/// buffer and freed *before* the skip is read back from scratch, so the
/// upsampled field and the skip are never resident together.
fn concat_skip<E: GemmElement + HaloElement>(
    h: Tensor<E>,
    skip: Skip<E>,
    meter: &mut PeakMeter,
) -> Tensor<E> {
    match skip {
        Skip::Resident(s) => {
            let cat = concat_channels(&h, &s);
            meter.alloc(cat.len());
            meter.free(s.len());
            meter.free(h.len());
            cat
        }
        Skip::Spilled { path, dims } => {
            let dh = Dims5::of(&h);
            assert_eq!(dims.len(), 5);
            let (sc, sd, shh, sw) = (dims[1], dims[2], dims[3], dims[4]);
            assert_eq!(
                (dh.n, dh.d, dh.h, dh.w),
                (dims[0], sd, shh, sw),
                "spatial/batch mismatch with spilled skip"
            );
            let vol = dh.vol();
            let mut cat: Tensor<E> = Tensor::zeros([dh.n, dh.c + sc, dh.d, dh.h, dh.w]);
            meter.alloc(cat.len());
            {
                let (hsl, osl) = (h.as_slice(), cat.as_mut_slice());
                for n in 0..dh.n {
                    let o_base = n * (dh.c + sc) * vol;
                    osl[o_base..o_base + dh.c * vol]
                        .copy_from_slice(&hsl[n * dh.c * vol..(n + 1) * dh.c * vol]);
                }
            }
            meter.free(h.len());
            drop(h);
            // Stream the spilled skip straight into `cat`'s tail channels,
            // one bounded chunk at a time — the skip tensor itself is never
            // re-materialized. Chunk boundaries follow the writer's layout
            // (multiples of SPILL_CHUNK_ELEMS in source index space), so
            // each read decodes exactly one written chunk.
            let file = std::fs::File::open(&path)
                .unwrap_or_else(|e| panic!("skip load from {} failed: {e}", path.display()));
            let mut r = std::io::BufReader::new(file);
            let total: usize = dims.iter().product();
            let batch_elems = sc * vol;
            let mut buf = vec![E::default(); SPILL_CHUNK_ELEMS.min(total)];
            meter.alloc(buf.len());
            let mut src = 0usize;
            while src < total {
                let len = SPILL_CHUNK_ELEMS.min(total - src);
                read_spill_stream(&mut r, &mut buf[..len], &path);
                let osl = cat.as_mut_slice();
                let mut off = 0usize;
                while off < len {
                    let gidx = src + off;
                    let (n, bo) = (gidx / batch_elems, gidx % batch_elems);
                    let run = (batch_elems - bo).min(len - off);
                    let o_base = n * (dh.c + sc) * vol + dh.c * vol + bo;
                    osl[o_base..o_base + run].copy_from_slice(&buf[off..off + run]);
                    off += run;
                }
                src += len;
            }
            meter.free(buf.len());
            drop(r);
            let _ = std::fs::remove_file(&path);
            cat
        }
    }
}

/// Slab-decomposed inference forward of the U-Net (see the module docs).
///
/// `slab` is this rank's contiguous slab of the NCDHW input along the
/// split axis; its split extent must be a positive multiple of `2^depth`
/// (the pool-alignment rule). Every rank of `comm` must call this
/// collectively against identically-configured models (shared or
/// replicated — the network is only read). Returns the owned slab of the
/// output — stitching the rank-ordered results yields a field bitwise
/// identical (at `f64`) to the serial forward on the full input, for
/// every [`SlabOpts`] setting.
pub fn infer_slab<E: GemmElement + HaloElement>(
    net: &UNet<E>,
    slab: &Tensor<E>,
    comm: &dyn Comm,
    ws: &mut Workspace<E>,
    opts: &SlabOpts,
) -> Tensor<E> {
    let axis = net.split_axis_of();
    let d = Dims5::of(slab);
    // The slab must survive `depth` poolings on its own: this is exactly
    // the per-rank pool-alignment rule (engine-validated; re-checked here).
    net.check_input_dims(&d);
    let depth = net.cfg.depth;
    let mut tag = 0u64;
    let mut meter = PeakMeter::default();
    let mut h = slab.clone();
    meter.alloc(h.len());
    let mut skips: Vec<Skip<E>> = Vec::with_capacity(depth);
    for i in 0..depth {
        h = halo_block_infer(&net.enc[i], h, comm, axis, &mut tag, ws, opts, &mut meter);
        match &opts.spill_dir {
            // Streaming mode: the skip goes to scratch now and comes back
            // right before its decoder level — no resident copy retained.
            Some(dir) => skips.push(Skip::spill(&h, dir, comm.rank())),
            None => {
                skips.push(Skip::Resident(h.clone()));
                meter.alloc(h.len());
            }
        }
        let pooled = net.pools[i].infer(&h);
        meter.alloc(pooled.len());
        meter.free(h.len());
        h = pooled;
    }
    h = halo_block_infer(
        &net.bottleneck,
        h,
        comm,
        axis,
        &mut tag,
        ws,
        opts,
        &mut meter,
    );
    for i in (0..depth).rev() {
        let up = net.ups[i].infer(&h, ws);
        meter.alloc(up.len());
        meter.free(h.len());
        h = up;
        // Consume (not borrow) the skip so its slab is freed immediately —
        // the decoder's contribution to the per-rank memory bound.
        let skip = skips.pop().expect("one skip per level");
        h = concat_skip(h, skip, &mut meter);
        h = halo_block_infer(
            &net.merges[i],
            h,
            comm,
            axis,
            &mut tag,
            ws,
            opts,
            &mut meter,
        );
    }
    let head = net.head.infer(&h, ws);
    meter.alloc(head.len());
    meter.free(h.len());
    h = head;
    if let Some(s) = &net.sigmoid {
        let out = s.infer(&h);
        meter.alloc(out.len());
        meter.free(h.len());
        h = out;
    }
    h
}

/// Exclusive-reference convenience wrapper over [`infer_slab`] with
/// default options and a fresh workspace — the [`crate::Model`] trait's
/// `predict_slab` hook.
pub fn predict_slab(net: &mut UNet, slab: &Tensor, comm: &dyn Comm) -> Tensor {
    let mut ws = Workspace::new();
    infer_slab(net, slab, comm, &mut ws, &SlabOpts::default())
}

/// Models the peak number of live activation scalars of one rank's
/// [`infer_slab`] walk with **default options** (overlap on, no spill).
/// See [`activation_peak_elems_opts`].
pub fn activation_peak_elems(
    cfg: &UNetConfig,
    batch: usize,
    dims: [usize; 3],
    halo_sides: usize,
) -> usize {
    activation_peak_elems_opts(cfg, batch, dims, halo_sides, &SlabOpts::default())
}

/// Models the peak number of live activation scalars (elements of the
/// inference type) of one rank's [`infer_slab`] walk over a
/// `[batch, in_c, …]` slab with spatial dims `dims` (`[d, h, w]`; use
/// `d = 1` for 2D networks), under the given [`SlabOpts`].
///
/// `halo_sides` is the number of neighbours exchanging halos with this
/// rank (0 for a serial/full-field forward, 1 for edge ranks, 2 for
/// interior ranks). The model counts the tensors the forward holds alive
/// simultaneously (input, conv output, halo planes or extended copy per
/// the overlap mode, retained or transiently-loaded skips per the spill
/// mode) level by level; it is an activation model, not an allocator
/// trace — weights, GEMM scratch and the assembled I/O fields are
/// excluded. Multiply by the element byte width for bytes. The walk's
/// instrumented counterpart is [`measured_peak_elems`], which never
/// exceeds this model.
pub fn activation_peak_elems_opts(
    cfg: &UNetConfig,
    batch: usize,
    dims: [usize; 3],
    halo_sides: usize,
    opts: &SlabOpts,
) -> usize {
    let [d0, h0, w0] = dims;
    assert!(!cfg.two_d || d0 == 1, "2D networks take a unit depth axis");
    let depth = cfg.depth;
    let spill = opts.spill_dir.is_some();
    let split0 = if cfg.two_d { h0 } else { d0 };
    // Spatial volume and per-plane (split-axis) volume at level l.
    let vol = |l: usize| -> usize {
        if cfg.two_d {
            (h0 >> l) * (w0 >> l)
        } else {
            (d0 >> l) * (h0 >> l) * (w0 >> l)
        }
    };
    let plane = |l: usize| -> usize {
        if cfg.two_d {
            w0 >> l
        } else {
            (h0 >> l) * (w0 >> l)
        }
    };
    let halo = |c: usize, l: usize| batch * c * halo_sides * plane(l);
    let t = |c: usize, l: usize| batch * c * vol(l);
    let ch = |i: usize| cfg.channels(i);

    let mut peak = 0usize;
    let mut skips = 0usize;
    let mut live = t(cfg.in_channels, 0);
    peak = peak.max(live);
    // One conv block. Overlapped halo (taken whenever the level's slab is
    // at least 2 planes deep — halo width 1): x + out + received planes +
    // one transient 3-plane boundary band, no extended copy. Fallback:
    // x + halo-extended copy + out. Then bn/act briefly double the output.
    macro_rules! block {
        ($c_in:expr, $c_out:expr, $l:expr) => {{
            let out = t($c_out, $l);
            let overlapped = opts.overlap && halo_sides > 0 && (split0 >> $l) >= 2;
            if overlapped {
                let band = 3 * batch * $c_in * plane($l);
                peak = peak.max(skips + live + out + halo($c_in, $l) + band);
            } else {
                peak = peak.max(skips + 2 * live + halo($c_in, $l) + out);
            }
            peak = peak.max(skips + 2 * out);
            live = out;
        }};
    }
    for i in 0..depth {
        let c_in = if i == 0 { cfg.in_channels } else { ch(i - 1) };
        block!(c_in, ch(i), i);
        if !spill {
            skips += live; // skip clone retained until the decoder consumes it
        }
        let pooled = t(ch(i), i + 1);
        peak = peak.max(skips + live + pooled);
        live = pooled;
    }
    block!(ch(depth - 1), ch(depth), depth);
    for i in (0..depth).rev() {
        let up = t(ch(i), i);
        peak = peak.max(skips + live + up);
        live = up;
        let skip_sz = t(ch(i), i);
        let cat = t(2 * ch(i), i);
        if spill {
            // Streaming concat: `h` is copied into the concat buffer and
            // freed before the skip is read back, so the two phases are
            // `h + cat` then `cat + skip` — never all three at once.
            peak = peak.max(skips + live + cat).max(skips + cat + skip_sz);
        } else {
            peak = peak.max(skips + live + cat);
            skips -= skip_sz; // skip freed right after concat
        }
        live = cat;
        block!(2 * ch(i), ch(i), i);
    }
    let head = t(cfg.out_channels, 0);
    peak = peak.max(live + 2 * head); // head output + sigmoid output
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use mgd_dist::{carve_planes, SlabPartition};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn net(two_d: bool, depth: usize, seed: u64) -> UNet {
        UNet::new(UNetConfig {
            depth,
            base_filters: 2,
            two_d,
            seed,
            ..Default::default()
        })
    }

    fn spill_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("mgd-spatial-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spatial_matches_serial(
        two_d: bool,
        depth: usize,
        dims: [usize; 3],
        p: usize,
        opts: &SlabOpts,
    ) {
        let mut reference = net(two_d, depth, 42);
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::rand_uniform(vec![2, 1, dims[0], dims[1], dims[2]], -1.0, 1.0, &mut rng);
        let serial = reference.predict(&x);
        let d5 = Dims5::of(&x);
        let axis = reference.split_axis();
        let extent = axis.extent(&d5);
        let part = SlabPartition::aligned(extent, p, 1 << depth).unwrap();
        let layout = axis.layout(&d5);
        let shared = Arc::new(net(two_d, depth, 42));
        let jobs: Vec<(Tensor, std::ops::Range<usize>)> = (0..p)
            .map(|r| {
                let owned = part.owned_planes(r);
                let data = carve_planes(x.as_slice(), &layout, owned.start, owned.end);
                let sdims = match axis {
                    SplitAxis::Depth => vec![2, 1, owned.len(), dims[1], dims[2]],
                    SplitAxis::Height => vec![2, 1, 1, owned.len(), dims[2]],
                };
                (Tensor::from_vec(sdims, data), owned)
            })
            .collect();
        let results = mgd_dist::launch_with(jobs, |comm, (slab, owned)| {
            let mut ws = Workspace::new();
            (owned, infer_slab(&shared, &slab, &comm, &mut ws, opts))
        });
        // Stitch owned output slabs and compare bitwise.
        let out_layout = axis.layout(&Dims5::of(&serial));
        for (owned, out) in results {
            let expect = carve_planes(serial.as_slice(), &out_layout, owned.start, owned.end);
            assert_eq!(out.as_slice().len(), expect.len());
            for (i, (a, b)) in out.as_slice().iter().zip(&expect).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "two_d={two_d} depth={depth} p={p} opts={opts:?} owned={owned:?} \
                     elem {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn spatial_forward_is_bitwise_serial_2d() {
        for p in [2usize, 3, 4] {
            spatial_matches_serial(true, 2, [1, 16, 12], p, &SlabOpts::default());
        }
    }

    #[test]
    fn spatial_forward_is_bitwise_serial_3d() {
        for p in [2usize, 3] {
            spatial_matches_serial(false, 1, [8, 8, 4], p, &SlabOpts::default());
            spatial_matches_serial(false, 2, [16, 8, 4], p, &SlabOpts::default());
        }
    }

    #[test]
    fn overlap_off_is_bitwise_serial_too() {
        let opts = SlabOpts {
            overlap: false,
            ..Default::default()
        };
        spatial_matches_serial(true, 2, [1, 16, 12], 3, &opts);
        spatial_matches_serial(false, 2, [16, 8, 4], 2, &opts);
    }

    #[test]
    fn skip_spill_is_bitwise_serial() {
        let opts = SlabOpts {
            spill_dir: Some(spill_dir()),
            ..Default::default()
        };
        spatial_matches_serial(false, 2, [16, 8, 4], 2, &opts);
        spatial_matches_serial(true, 2, [1, 16, 12], 4, &opts);
    }

    /// The chunked spill stream must round-trip bit-exactly across chunk
    /// boundaries — including an f32 payload whose ragged tail leaves a
    /// half-empty wire word — using only bounded buffers.
    #[test]
    fn spill_stream_roundtrips_across_chunk_boundaries() {
        fn roundtrip<E: HaloElement + PartialEq + std::fmt::Debug>(vals: &[E]) {
            let path = Path::new("spill-stream-roundtrip");
            let mut file = Vec::new();
            write_spill_stream(&mut file, vals, path);
            assert_eq!(
                file.len(),
                8 * E::wire_words(SPILL_CHUNK_ELEMS) * (vals.len() / SPILL_CHUNK_ELEMS)
                    + 8 * E::wire_words(vals.len() % SPILL_CHUNK_ELEMS)
            );
            let mut out = vec![E::default(); vals.len()];
            read_spill_stream(&mut file.as_slice(), &mut out, path);
            assert_eq!(out, vals);
        }
        // 2.5 chunks of f64 with a signed zero on a chunk boundary.
        let mut v64: Vec<f64> = (0..SPILL_CHUNK_ELEMS * 2 + SPILL_CHUNK_ELEMS / 2 + 3)
            .map(|i| (i as f64).sin())
            .collect();
        v64[SPILL_CHUNK_ELEMS] = -0.0;
        roundtrip(&v64);
        // Odd-length f32: the last wire word carries one value.
        let v32: Vec<f32> = (0..SPILL_CHUNK_ELEMS + 7)
            .map(|i| (i as f32).cos())
            .collect();
        roundtrip(&v32);
        // NaN payload bits must survive the stream (compared as bits —
        // NaN != NaN under PartialEq).
        v64[1] = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut back = vec![0.0f64; v64.len()];
        let mut file = Vec::new();
        write_spill_stream(&mut file, &v64, Path::new("bits"));
        read_spill_stream(&mut file.as_slice(), &mut back, Path::new("bits"));
        let eq = v64
            .iter()
            .zip(&back)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(eq, "bit patterns must survive the stream");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// The overlapped halo path is bitwise-equal to serial over random
        /// resolution / depth / dimensionality / rank count (satellite
        /// coverage for the overlap rewrite).
        #[test]
        fn overlapped_slab_forward_is_bitwise_serial(
            two_d_bit in 0usize..=1,
            depth in 1usize..=2,
            p in 2usize..=4,
            mult in 1usize..=3,
            cross in 1usize..=3,
            overlap_bit in 0usize..=1,
        ) {
            let (two_d, overlap) = (two_d_bit == 1, overlap_bit == 1);
            // Split extent must admit p aligned slabs: p · mult · 2^depth.
            let split = p * mult * (1 << depth);
            let other = cross * (1 << depth);
            let dims = if two_d { [1, split, other] } else { [split, other, 4] };
            spatial_matches_serial(
                two_d,
                depth,
                dims,
                p,
                &SlabOpts { overlap, ..Default::default() },
            );
        }
    }

    #[test]
    fn single_rank_slab_matches_predict() {
        let mut a = net(false, 2, 5);
        let b = net(false, 2, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(vec![1, 1, 8, 8, 8], -1.0, 1.0, &mut rng);
        let serial = a.predict(&x);
        let results = mgd_dist::launch_with(vec![b], |comm, mut replica| {
            predict_slab(&mut replica, &x, &comm)
        });
        assert_eq!(serial.as_slice(), results[0].as_slice());
    }

    #[test]
    fn model_trait_exposes_spatial_hooks() {
        let m: Box<dyn Model> = Box::new(net(true, 2, 3));
        assert_eq!(m.spatial_align(), 4);
        let x = Tensor::zeros([1, 1, 1, 8, 8]);
        let y = mgd_dist::launch_with(vec![m], |comm, mut replica| replica.predict_slab(&x, &comm))
            .pop()
            .unwrap();
        assert!(y.is_some());
    }

    #[test]
    fn activation_model_scales_down_with_slabs() {
        let cfg = UNetConfig {
            depth: 3,
            base_filters: 16,
            ..Default::default()
        };
        let full = activation_peak_elems(&cfg, 1, [64, 64, 64], 0);
        let slab = activation_peak_elems(&cfg, 1, [16, 64, 64], 2);
        assert!(slab < full / 2, "slab {slab} vs full {full}");
        // The halo contribution is visible but small.
        let edge = activation_peak_elems(&cfg, 1, [16, 64, 64], 1);
        assert!(edge <= slab);
    }

    #[test]
    fn activation_model_shrinks_with_overlap_and_spill() {
        let cfg = UNetConfig {
            depth: 3,
            base_filters: 16,
            ..Default::default()
        };
        let legacy = activation_peak_elems_opts(
            &cfg,
            1,
            [16, 64, 64],
            2,
            &SlabOpts {
                overlap: false,
                spill_dir: None,
            },
        );
        let overlapped = activation_peak_elems_opts(&cfg, 1, [16, 64, 64], 2, &SlabOpts::default());
        let streamed = activation_peak_elems_opts(
            &cfg,
            1,
            [16, 64, 64],
            2,
            &SlabOpts {
                overlap: true,
                spill_dir: Some(PathBuf::from("/tmp")),
            },
        );
        assert!(
            overlapped < legacy,
            "overlap drops the extended copy: {overlapped} vs {legacy}"
        );
        assert!(
            streamed < overlapped,
            "spilling skips caps the resident set: {streamed} vs {overlapped}"
        );
    }

    #[test]
    fn measured_peak_stays_within_model() {
        for (opts, label) in [
            (SlabOpts::default(), "overlap"),
            (
                SlabOpts {
                    overlap: false,
                    spill_dir: None,
                },
                "fallback",
            ),
            (
                SlabOpts {
                    overlap: true,
                    spill_dir: Some(spill_dir()),
                },
                "spill",
            ),
        ] {
            reset_measured_peak();
            spatial_matches_serial(false, 2, [16, 8, 4], 2, &opts);
            let measured = measured_peak_elems();
            // Per-rank slab: 8 planes, interior rank has 2 halo sides.
            let cfg = UNetConfig {
                depth: 2,
                base_filters: 2,
                ..Default::default()
            };
            let model = activation_peak_elems_opts(&cfg, 2, [8, 8, 4], 2, &opts);
            assert!(measured > 0, "{label}: meter did not run");
            assert!(
                measured <= model,
                "{label}: measured {measured} exceeds model {model}"
            );
        }
    }
}
