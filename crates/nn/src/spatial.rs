//! Slab-decomposed (spatial model-parallel) U-Net inference.
//!
//! The paper's §5 outlook — "scaling beyond megavoxels to gigavoxels" via
//! "model-parallel distributed deep learning" — needs the *network*, not
//! just the FEM solver, to run without any rank ever materializing a
//! full-resolution activation. This module implements that forward path:
//! the input field is carved into `p` contiguous slabs along its slowest
//! non-unit spatial axis (depth for 3D problems, height for 2D), each rank
//! walks the whole U-Net on its slab, and thin halo planes are exchanged
//! over a [`Comm`] right before every stencil application.
//!
//! ## Halo-width rule
//!
//! Only the `same`-padded stencil convolutions couple neighbouring planes
//! along the split axis, and their reach is exactly the padding `(k-1)/2`
//! — one plane for the U-Net's 3×3×3 blocks. [`predict_slab`] therefore
//! exchanges one halo plane per side before each `Conv3d` (encoder,
//! bottleneck and merge blocks) and computes **only the owned output
//! planes** through [`Conv3d::forward_planes`], which restricts the
//! im2col/GEMM lowering to the owned anchor rows. Every owned output
//! element then sees exactly the operand values the serial pass sees, in
//! the same accumulation order, so the assembled result is **bitwise
//! identical** to the serial forward at any rank count. All other layers
//! are local: `MaxPool3d`/`ConvTranspose3d` with `k = s = 2` never
//! straddle a cut (see the alignment rule), batch norm at inference is a
//! per-channel affine map from running statistics, activations are
//! pointwise, and the 1×1×1 head has zero reach.
//!
//! ## Pool-alignment rule
//!
//! Slab sizes must be positive multiples of `2^depth` along the split
//! axis ([`mgd_dist::SlabPartition::aligned`]) so that every factor-2
//! pool/upsample boundary at every level lands on a slab cut; the slab
//! then stays a whole number of (even) planes at all `depth + 1` levels
//! and pooling/upsampling remain rank-local. Violations are caught as
//! typed errors at engine-build time, and [`predict_slab`] re-asserts
//! them defensively.
//!
//! Per-rank activation memory is ≈ `slab / p + halos` per level (skip
//! tensors are dropped as soon as the decoder consumes them);
//! [`activation_peak_elems`] models the live-tensor peak so serving
//! harnesses can report per-rank footprints against the serial forward.

use crate::conv::Conv3d;
use crate::layer::{Dims5, Layer};
use crate::unet::{concat_channels, ConvBlock, UNet, UNetConfig};
use mgd_dist::{exchange_extend, Comm, SlabLayout};
use mgd_tensor::Tensor;

/// Which NCDHW axis a spatial decomposition splits.
///
/// 3D problems split the depth (z) axis; 2D problems — whose tensors carry
/// a unit depth axis — split the height axis. Both map onto the same
/// `[pre, split, post]` plane arithmetic of [`mgd_dist::halo`] and the
/// same flattened `(o_d, o_h)` anchor-row ranges of the GEMM lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitAxis {
    /// Split along the depth axis (3D problems).
    Depth,
    /// Split along the height axis (2D problems; requires `d == 1`).
    Height,
}

impl SplitAxis {
    /// The `[pre, split, post]` view of an NCDHW tensor split along this
    /// axis.
    pub fn layout(&self, d: &Dims5) -> SlabLayout {
        match self {
            SplitAxis::Depth => SlabLayout {
                pre: d.n * d.c,
                split: d.d,
                post: d.h * d.w,
            },
            SplitAxis::Height => {
                assert_eq!(d.d, 1, "height split needs a unit depth axis");
                SlabLayout {
                    pre: d.n * d.c,
                    split: d.h,
                    post: d.w,
                }
            }
        }
    }

    /// Extent of the split axis in `d`.
    pub fn extent(&self, d: &Dims5) -> usize {
        match self {
            SplitAxis::Depth => d.d,
            SplitAxis::Height => d.h,
        }
    }
}

impl UNet {
    /// The axis [`predict_slab`] splits for this architecture.
    pub fn split_axis(&self) -> SplitAxis {
        if self.cfg.two_d {
            SplitAxis::Height
        } else {
            SplitAxis::Depth
        }
    }
}

/// Exchanges the conv's halo planes with ring neighbours, then computes
/// only the owned output planes of a `same` stencil convolution.
fn halo_conv(
    conv: &mut Conv3d,
    x: &Tensor,
    comm: &dyn Comm,
    axis: SplitAxis,
    tag: &mut u64,
) -> Tensor {
    let d = Dims5::of(x);
    let (halo, own) = match axis {
        SplitAxis::Depth => {
            assert_eq!(conv.stride.0, 1, "spatial split needs stride 1 along depth");
            assert_eq!(
                conv.kernel.0,
                2 * conv.padding.0 + 1,
                "spatial split needs a symmetric same-conv along depth"
            );
            (conv.padding.0, d.d)
        }
        SplitAxis::Height => {
            assert_eq!(d.d, 1, "height split needs a unit depth axis");
            assert_eq!(
                conv.stride.1, 1,
                "spatial split needs stride 1 along height"
            );
            assert_eq!(
                conv.kernel.1,
                2 * conv.padding.1 + 1,
                "spatial split needs a symmetric same-conv along height"
            );
            (conv.padding.1, d.h)
        }
    };
    if comm.size() == 1 || halo == 0 {
        // No neighbours (or no reach): the slab is self-contained.
        return conv.forward(x, false);
    }
    let ext = exchange_extend(comm, x.as_slice(), &axis.layout(&d), halo, *tag);
    *tag += 2;
    let (lo, hi) = (ext.lo, ext.hi);
    let ext_dims = match axis {
        SplitAxis::Depth => vec![d.n, d.c, lo + d.d + hi, d.h, d.w],
        SplitAxis::Height => vec![d.n, d.c, 1, lo + d.h + hi, d.w],
    };
    let x_ext = Tensor::from_vec(ext_dims, ext.data);
    conv.forward_planes(&x_ext, lo..lo + own, axis)
}

/// One Conv → (BatchNorm) → LeakyReLU block with halo exchange before the
/// stencil. Batch norm runs in inference mode (running statistics — a
/// rank-local per-channel affine map), so no cross-rank statistics are
/// needed.
fn halo_conv_block(
    block: &mut ConvBlock,
    x: &Tensor,
    comm: &dyn Comm,
    axis: SplitAxis,
    tag: &mut u64,
) -> Tensor {
    let mut h = halo_conv(&mut block.conv, x, comm, axis, tag);
    if let Some(bn) = &mut block.bn {
        h = bn.forward(&h, false);
    }
    block.act.forward(&h, false)
}

/// Slab-decomposed inference forward of the U-Net (see the module docs).
///
/// `slab` is this rank's contiguous slab of the NCDHW input along
/// [`UNet::split_axis`]; its split extent must be a positive multiple of
/// `2^depth` (the pool-alignment rule). Every rank of `comm` must call
/// this collectively with identically-configured replicas. Returns the
/// owned slab of the output — stitching the rank-ordered results yields a
/// field bitwise identical to [`crate::Model::predict`] on the full input.
pub fn predict_slab(net: &mut UNet, slab: &Tensor, comm: &dyn Comm) -> Tensor {
    let axis = net.split_axis();
    let d = Dims5::of(slab);
    // The slab must survive `depth` poolings on its own: this is exactly
    // the per-rank pool-alignment rule (engine-validated; re-checked here).
    net.check_input_dims(&d);
    let depth = net.cfg.depth;
    let mut tag = 0u64;
    let mut h = slab.clone();
    let mut skips: Vec<Tensor> = Vec::with_capacity(depth);
    for i in 0..depth {
        h = halo_conv_block(&mut net.enc[i], &h, comm, axis, &mut tag);
        skips.push(h.clone());
        h = net.pools[i].forward(&h, false);
    }
    h = halo_conv_block(&mut net.bottleneck, &h, comm, axis, &mut tag);
    for i in (0..depth).rev() {
        h = net.ups[i].forward(&h, false);
        // Consume (not borrow) the skip so its slab is freed immediately —
        // the decoder's contribution to the per-rank memory bound.
        let skip = skips.pop().expect("one skip per level");
        h = concat_channels(&h, &skip);
        drop(skip);
        h = halo_conv_block(&mut net.merges[i], &h, comm, axis, &mut tag);
    }
    h = net.head.forward(&h, false);
    if let Some(s) = &mut net.sigmoid {
        h = s.forward(&h, false);
    }
    h
}

/// Models the peak number of live activation scalars (f64 elements) of
/// one rank's [`predict_slab`] walk over a `[batch, in_c, …]` slab with
/// spatial dims `dims` (`[d, h, w]`; use `d = 1` for 2D networks).
///
/// `halo_sides` is the number of neighbours exchanging halos with this
/// rank (0 for a serial/full-field forward, 1 for edge ranks, 2 for
/// interior ranks). The model counts the tensors the forward holds alive
/// simultaneously (input, halo-extended copy, conv output, retained
/// skips) level by level; it is an activation model, not an allocator
/// trace — weights, GEMM scratch and the assembled I/O fields are
/// excluded. Multiply by 8 for bytes.
pub fn activation_peak_elems(
    cfg: &UNetConfig,
    batch: usize,
    dims: [usize; 3],
    halo_sides: usize,
) -> usize {
    let [d0, h0, w0] = dims;
    assert!(!cfg.two_d || d0 == 1, "2D networks take a unit depth axis");
    let depth = cfg.depth;
    // Spatial volume and per-plane (split-axis) volume at level l.
    let vol = |l: usize| -> usize {
        if cfg.two_d {
            (h0 >> l) * (w0 >> l)
        } else {
            (d0 >> l) * (h0 >> l) * (w0 >> l)
        }
    };
    let plane = |l: usize| -> usize {
        if cfg.two_d {
            w0 >> l
        } else {
            (h0 >> l) * (w0 >> l)
        }
    };
    let halo = |c: usize, l: usize| batch * c * halo_sides * plane(l);
    let t = |c: usize, l: usize| batch * c * vol(l);
    let ch = |i: usize| cfg.channels(i);

    let mut peak = 0usize;
    let mut skips = 0usize;
    let mut live = t(cfg.in_channels, 0);
    peak = peak.max(live);
    // One conv block: x + halo-extended x + conv out live together, then
    // bn/act replace the output (two same-size tensors coexist briefly).
    macro_rules! block {
        ($c_in:expr, $c_out:expr, $l:expr) => {{
            let out = t($c_out, $l);
            peak = peak.max(skips + 2 * live + halo($c_in, $l) + out);
            peak = peak.max(skips + 2 * out);
            live = out;
        }};
    }
    for i in 0..depth {
        let c_in = if i == 0 { cfg.in_channels } else { ch(i - 1) };
        block!(c_in, ch(i), i);
        skips += live; // skip clone retained until the decoder consumes it
        let pooled = t(ch(i), i + 1);
        peak = peak.max(skips + live + pooled);
        live = pooled;
    }
    block!(ch(depth - 1), ch(depth), depth);
    for i in (0..depth).rev() {
        let up = t(ch(i), i);
        peak = peak.max(skips + live + up);
        live = up;
        let cat = t(2 * ch(i), i);
        peak = peak.max(skips + live + cat);
        skips -= t(ch(i), i); // skip freed right after concat
        live = cat;
        block!(2 * ch(i), ch(i), i);
    }
    let head = t(cfg.out_channels, 0);
    peak = peak.max(live + 2 * head); // head output + sigmoid output
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use mgd_dist::{carve_planes, SlabPartition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(two_d: bool, depth: usize, seed: u64) -> UNet {
        UNet::new(UNetConfig {
            depth,
            base_filters: 2,
            two_d,
            seed,
            ..Default::default()
        })
    }

    fn spatial_matches_serial(two_d: bool, depth: usize, dims: [usize; 3], p: usize) {
        let mut reference = net(two_d, depth, 42);
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::rand_uniform(vec![2, 1, dims[0], dims[1], dims[2]], -1.0, 1.0, &mut rng);
        let serial = reference.predict(&x);
        let d5 = Dims5::of(&x);
        let axis = reference.split_axis();
        let extent = axis.extent(&d5);
        let part = SlabPartition::aligned(extent, p, 1 << depth).unwrap();
        let layout = axis.layout(&d5);
        let jobs: Vec<(UNet, Tensor, std::ops::Range<usize>)> = (0..p)
            .map(|r| {
                let owned = part.owned_planes(r);
                let data = carve_planes(x.as_slice(), &layout, owned.start, owned.end);
                let sdims = match axis {
                    SplitAxis::Depth => vec![2, 1, owned.len(), dims[1], dims[2]],
                    SplitAxis::Height => vec![2, 1, 1, owned.len(), dims[2]],
                };
                (net(two_d, depth, 42), Tensor::from_vec(sdims, data), owned)
            })
            .collect();
        let results = mgd_dist::launch_with(jobs, |comm, (mut replica, slab, owned)| {
            (owned, predict_slab(&mut replica, &slab, &comm))
        });
        // Stitch owned output slabs and compare bitwise.
        let out_layout = axis.layout(&Dims5::of(&serial));
        for (owned, out) in results {
            let expect = carve_planes(serial.as_slice(), &out_layout, owned.start, owned.end);
            assert_eq!(out.as_slice().len(), expect.len());
            for (i, (a, b)) in out.as_slice().iter().zip(&expect).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "two_d={two_d} depth={depth} p={p} owned={owned:?} elem {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn spatial_forward_is_bitwise_serial_2d() {
        for p in [2usize, 3, 4] {
            spatial_matches_serial(true, 2, [1, 16, 12], p);
        }
    }

    #[test]
    fn spatial_forward_is_bitwise_serial_3d() {
        for p in [2usize, 3] {
            spatial_matches_serial(false, 1, [8, 8, 4], p);
            spatial_matches_serial(false, 2, [16, 8, 4], p);
        }
    }

    #[test]
    fn single_rank_slab_matches_predict() {
        let mut a = net(false, 2, 5);
        let b = net(false, 2, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(vec![1, 1, 8, 8, 8], -1.0, 1.0, &mut rng);
        let serial = a.predict(&x);
        let results = mgd_dist::launch_with(vec![b], |comm, mut replica| {
            predict_slab(&mut replica, &x, &comm)
        });
        assert_eq!(serial.as_slice(), results[0].as_slice());
    }

    #[test]
    fn model_trait_exposes_spatial_hooks() {
        let m: Box<dyn Model> = Box::new(net(true, 2, 3));
        assert_eq!(m.spatial_align(), 4);
        let x = Tensor::zeros([1, 1, 1, 8, 8]);
        let y = mgd_dist::launch_with(vec![m], |comm, mut replica| replica.predict_slab(&x, &comm))
            .pop()
            .unwrap();
        assert!(y.is_some());
    }

    #[test]
    fn activation_model_scales_down_with_slabs() {
        let cfg = UNetConfig {
            depth: 3,
            base_filters: 16,
            ..Default::default()
        };
        let full = activation_peak_elems(&cfg, 1, [64, 64, 64], 0);
        let slab = activation_peak_elems(&cfg, 1, [16, 64, 64], 2);
        assert!(slab < full / 2, "slab {slab} vs full {full}");
        // The halo contribution is visible but small.
        let edge = activation_peak_elems(&cfg, 1, [16, 64, 64], 1);
        assert!(edge <= slab);
    }
}
