//! Pointwise activation layers.

use crate::layer::Layer;
use mgd_tensor::{Element, Tensor};

/// LeakyReLU: `y = x` for `x > 0`, `y = αx` otherwise (paper §4.1 uses
/// LeakyReLU on all intermediate layers).
#[derive(Clone, Debug)]
pub struct LeakyReLU {
    /// Negative-side slope α.
    pub alpha: f64,
    cache_x: Option<Tensor>,
}

impl LeakyReLU {
    /// Creates the activation with slope `alpha`.
    pub fn new(alpha: f64) -> Self {
        LeakyReLU {
            alpha,
            cache_x: None,
        }
    }

    /// Shared-state inference forward (`&self`): the pure pointwise map,
    /// bitwise identical to `forward(x, false)` for `f64` inputs (the slope
    /// converts through [`Element::from_f64`], the identity for `f64`).
    pub fn infer<E: Element>(&self, x: &Tensor<E>) -> Tensor<E> {
        let a = E::from_f64(self.alpha);
        x.map(|v| if v > E::ZERO { v } else { a * v })
    }

    /// In-place variant of [`Self::infer`] — same per-element map, no
    /// allocation.
    pub fn infer_inplace<E: Element>(&self, x: &mut Tensor<E>) {
        let a = E::from_f64(self.alpha);
        for v in x.as_mut_slice().iter_mut() {
            *v = if *v > E::ZERO { *v } else { a * *v };
        }
    }
}

impl Layer for LeakyReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache_x = Some(x.clone());
        }
        self.infer(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        assert_eq!(x.shape(), grad_out.shape());
        let mut gx = grad_out.clone();
        let a = self.alpha;
        let xs = x.as_slice();
        let g = gx.as_mut_slice();
        for i in 0..g.len() {
            if xs[i] <= 0.0 {
                g[i] *= a;
            }
        }
        gx
    }

    fn name(&self) -> String {
        format!("LeakyReLU(α={})", self.alpha)
    }
}

/// Logistic sigmoid, used by the network head so the predicted field lies in
/// `(0, 1)` — matching the Dirichlet data `u ∈ {0, 1}` and the maximum
/// principle for this PDE.
#[derive(Clone, Debug, Default)]
pub struct Sigmoid {
    cache_y: Option<Tensor>,
}

impl Sigmoid {
    /// Creates the activation.
    pub fn new() -> Self {
        Sigmoid { cache_y: None }
    }

    /// Shared-state inference forward (`&self`): the pure pointwise map,
    /// bitwise identical to `forward(x, false)` for `f64` inputs.
    pub fn infer<E: Element>(&self, x: &Tensor<E>) -> Tensor<E> {
        x.map(|v| E::ONE / (E::ONE + (-v).exp()))
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.infer(x);
        if train {
            self.cache_y = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cache_y.as_ref().expect("backward before forward");
        assert_eq!(y.shape(), grad_out.shape());
        let mut gx = grad_out.clone();
        let ys = y.as_slice();
        let g = gx.as_mut_slice();
        for i in 0..g.len() {
            g[i] *= ys[i] * (1.0 - ys[i]);
        }
        gx
    }

    fn name(&self) -> String {
        "Sigmoid".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradient, FD_EPS, FD_TOL};

    #[test]
    fn leaky_relu_values() {
        let mut l = LeakyReLU::new(0.1);
        let x = Tensor::from_vec([1, 1, 1, 1, 4], vec![-2.0, -0.5, 0.0, 3.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[-0.2, -0.05, 0.0, 3.0]);
    }

    #[test]
    fn sigmoid_values() {
        let mut l = Sigmoid::new();
        let x = Tensor::from_vec([1, 1, 1, 1, 3], vec![0.0, 100.0, -100.0]);
        let y = l.forward(&x, true);
        assert!((y[0] - 0.5).abs() < 1e-15);
        assert!(y[1] > 0.999_999);
        assert!(y[2] < 1e-6);
    }

    #[test]
    fn leaky_relu_gradcheck() {
        let l = LeakyReLU::new(0.07);
        // Offset inputs away from the kink for clean finite differences.
        check_layer_gradient(Box::new(l), &[2, 3, 1, 4, 4], 0.35, FD_EPS, FD_TOL);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let l = Sigmoid::new();
        check_layer_gradient(Box::new(l), &[2, 2, 2, 3, 3], 0.0, FD_EPS, FD_TOL);
    }
}
