//! Stochastic optimizers (Adam, SGD) over [`Param`] lists.

use crate::param::Param;
use mgd_tensor::{Element, Tensor};

/// Zeroes every gradient accumulator (called between optimizer steps).
pub fn zero_grads(params: &mut [&mut Param]) {
    for p in params.iter_mut() {
        p.zero_grad();
    }
}

/// A first-order stochastic optimizer over [`Param`] lists.
///
/// The trainers are generic over this trait, so schedules and the
/// `SolverEngine` facade work with any update rule — Adam, SGD, or a future
/// sharded/compressed optimizer — and a `Box<dyn Optimizer>` is itself an
/// `Optimizer` for runtime-chosen configurations.
pub trait Optimizer: Send {
    /// Applies one update using the gradients currently stored in `params`.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (warm-up / decay schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Human-readable identifier for logs and checkpoints.
    fn name(&self) -> &'static str;

    /// Deep copy (including moment/velocity state) as a boxed trait object.
    ///
    /// Data-parallel training replicates the optimizer once per rank; since
    /// all ranks see identical averaged gradients, the replicated state
    /// stays identical across ranks. For a `Clone` optimizer this is
    /// `Box::new(self.clone())`.
    fn clone_optimizer(&self) -> Box<dyn Optimizer>;
}

impl Optimizer for Box<dyn Optimizer> {
    fn step(&mut self, params: &mut [&mut Param]) {
        (**self).step(params)
    }

    fn learning_rate(&self) -> f64 {
        (**self).learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f64) {
        (**self).set_learning_rate(lr)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn clone_optimizer(&self) -> Box<dyn Optimizer> {
        (**self).clone_optimizer()
    }
}

/// Adam (Kingma & Ba), the optimizer used throughout the paper
/// (lr 1e-5 for the 2D studies, 1e-4 for the 3D scaling runs).
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator floor.
    pub eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the conventional β = (0.9, 0.999) and the shared
    /// [`Element::ADAM_EPS`] denominator floor (1e-8).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: <f64 as Element>::ADAM_EPS,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Steps count so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    /// Applies one update using the gradients currently stored in `params`.
    ///
    /// Moment buffers are created lazily on first use and re-created if the
    /// parameter structure changes (e.g. after architectural adaptation —
    /// the paper re-initializes new layers, so fresh moments are correct).
    fn step(&mut self, params: &mut [&mut Param]) {
        let shapes_match = self.m.len() == params.len()
            && self
                .m
                .iter()
                .zip(params.iter())
                .all(|(m, p)| m.shape() == p.data.shape());
        if !shapes_match {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.data.shape().clone()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.data.shape().clone()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let g = p.grad.as_slice();
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let w = p.data.as_mut_slice();
            for j in 0..w.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / b1t;
                let vhat = v[j] / b2t;
                w[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "Adam"
    }

    fn clone_optimizer(&self) -> Box<dyn Optimizer> {
        Box::new(self.clone())
    }
}

/// Plain SGD with optional momentum (baseline optimizer).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum factor (0 disables).
    pub momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    /// Applies one update.
    fn step(&mut self, params: &mut [&mut Param]) {
        let shapes_match = self.velocity.len() == params.len()
            && self
                .velocity
                .iter()
                .zip(params.iter())
                .all(|(v, p)| v.shape() == p.data.shape());
        if !shapes_match {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.data.shape().clone()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let g = p.grad.as_slice();
            let v = self.velocity[i].as_mut_slice();
            let w = p.data.as_mut_slice();
            for j in 0..w.len() {
                v[j] = self.momentum * v[j] + g[j];
                w[j] -= self.lr * v[j];
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "SGD"
    }

    fn clone_optimizer(&self) -> Box<dyn Optimizer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: &[f64]) -> Param {
        Param::new(Tensor::from_vec([vals.len()], vals.to_vec()))
    }

    #[test]
    fn adam_first_step_moves_by_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut p = param(&[1.0, -2.0]);
        p.grad = Tensor::from_vec([2], vec![0.5, -0.1]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert!((p.data[0] - (1.0 - 0.01)).abs() < 1e-6);
        assert!((p.data[1] - (-2.0 + 0.01)).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = (w - 3)², grad = 2(w - 3).
        let mut p = param(&[0.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            p.grad = Tensor::from_vec([1], vec![2.0 * (p.data[0] - 3.0)]);
            opt.step(&mut [&mut p]);
        }
        assert!((p.data[0] - 3.0).abs() < 1e-3, "{}", p.data[0]);
    }

    #[test]
    fn adam_reference_two_steps() {
        // Hand-computed two steps with g = 1 each time, lr = 0.1.
        let mut p = param(&[0.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..2 {
            p.grad = Tensor::from_vec([1], vec![1.0]);
            opt.step(&mut [&mut p]);
        }
        // Step 1: mhat = 1, vhat = 1 -> w = -0.1/(1 + 1e-8) ≈ -0.1.
        // Step 2: m = 0.19/(1-0.81)=1, v = 1 -> w ≈ -0.2.
        assert!((p.data[0] + 0.2).abs() < 1e-6, "{}", p.data[0]);
    }

    #[test]
    fn adam_reinitializes_on_shape_change() {
        let mut p = param(&[0.0, 0.0]);
        let mut opt = Adam::new(0.1);
        p.grad = Tensor::from_vec([2], vec![1.0, 1.0]);
        opt.step(&mut [&mut p]);
        // Different structure: bigger parameter list.
        let mut q = param(&[0.0; 3]);
        q.grad = Tensor::from_vec([3], vec![1.0, 1.0, 1.0]);
        opt.step(&mut [&mut q]);
        assert_eq!(opt.steps(), 1, "moment buffers must reset");
    }

    #[test]
    fn sgd_with_momentum_accelerates() {
        let mut a = param(&[0.0]);
        let mut b = param(&[0.0]);
        let mut plain = Sgd::new(0.1, 0.0);
        let mut momo = Sgd::new(0.1, 0.9);
        for _ in 0..5 {
            a.grad = Tensor::from_vec([1], vec![1.0]);
            b.grad = Tensor::from_vec([1], vec![1.0]);
            plain.step(&mut [&mut a]);
            momo.step(&mut [&mut b]);
        }
        assert!(b.data[0] < a.data[0], "momentum should have moved farther");
    }

    #[test]
    fn optimizer_trait_objects_step() {
        let mut p = param(&[0.0]);
        let mut opt: Box<dyn Optimizer> = Box::new(Sgd::new(0.5, 0.0));
        assert_eq!(opt.name(), "SGD");
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.1);
        p.grad = Tensor::from_vec([1], vec![1.0]);
        opt.step(&mut [&mut p]);
        assert!((p.data[0] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_grads_clears() {
        let mut p = param(&[1.0]);
        p.grad = Tensor::from_vec([1], vec![5.0]);
        zero_grads(&mut [&mut p]);
        assert_eq!(p.grad[0], 0.0);
    }
}
