//! Internal helpers shared by the conv kernels.

/// Raw-pointer wrapper allowing provably disjoint writes from rayon tasks.
///
/// Used by conv/conv-transpose kernels where each `(batch, channel)` pair
/// owns a disjoint contiguous block of the output tensor. Generic over the
/// element type so the same kernels serve `f64` training and `f32` serving.
pub(crate) struct SendPtr<T = f64>(pub *mut T);

impl<T> SendPtr<T> {
    /// Returns the pointer; a method (not field access) so edition-2021
    /// closures capture the Sync wrapper rather than the raw pointer.
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: users only write through disjoint index ranges (one NC-block per
// task), which the calling kernels guarantee by construction.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Valid kernel-tap range `[lo, hi)` for output position `o`: taps `k` with
/// `0 <= o*stride + k - pad < extent`.
#[inline]
pub(crate) fn tap_range(
    o: usize,
    stride: usize,
    pad: usize,
    ksize: usize,
    extent: usize,
) -> (usize, usize) {
    let base = o * stride;
    let lo = pad.saturating_sub(base).min(ksize);
    let hi = (extent + pad - base).min(ksize);
    (lo, hi.max(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_range_interior() {
        // extent 8, k 3, pad 1, stride 1: interior position sees all taps.
        assert_eq!(tap_range(3, 1, 1, 3, 8), (0, 3));
    }

    #[test]
    fn tap_range_left_edge() {
        // o=0: tap 0 would read index -1 -> clipped.
        assert_eq!(tap_range(0, 1, 1, 3, 8), (1, 3));
    }

    #[test]
    fn tap_range_right_edge() {
        // o=7: tap 2 would read index 8 -> clipped.
        assert_eq!(tap_range(7, 1, 1, 3, 8), (0, 2));
    }

    #[test]
    fn tap_range_strided() {
        // stride 2, k 3, pad 1, extent 8; o=4 reads base 8: taps {0} would
        // be index 7, taps beyond extent clipped.
        let (lo, hi) = tap_range(4, 2, 1, 3, 8);
        assert!(lo < hi);
        for k in lo..hi {
            let idx = 4 * 2 + k;
            assert!(idx >= 1 && idx - 1 < 8);
        }
    }
}
