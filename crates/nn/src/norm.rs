//! Batch normalization over NCDHW activations.

use crate::layer::{Dims5, Layer};
use crate::param::Param;
use mgd_tensor::Tensor;

/// Per-channel batch normalization (statistics over batch × spatial dims),
/// as used after every convolution block in the paper's U-Net (§4.1).
#[derive(Clone, Debug)]
pub struct BatchNorm {
    /// Channel count.
    pub c: usize,
    /// Scale γ.
    pub gamma: Param,
    /// Shift β.
    pub beta: Param,
    /// Running mean (inference).
    pub running_mean: Vec<f64>,
    /// Running variance (inference).
    pub running_var: Vec<f64>,
    /// Numerical floor inside the square root.
    pub eps: f64,
    /// Running-statistics update rate.
    pub momentum: f64,
    cache: Option<BnCache>,
}

#[derive(Clone, Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f64>,
    dims: Dims5,
}

impl BatchNorm {
    /// Creates a batch-norm layer for `c` channels.
    pub fn new(c: usize) -> Self {
        BatchNorm {
            c,
            gamma: Param::new(Tensor::ones([c])),
            beta: Param::zeros([c]),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = Dims5::of(x);
        assert_eq!(dims.c, self.c, "channel mismatch");
        let m = (dims.n * dims.vol()) as f64;
        let xs = x.as_slice();
        let mut y = Tensor::zeros(x.shape().clone());
        let gamma = self.gamma.data.as_slice();
        let beta = self.beta.data.as_slice();

        let (mean, var): (Vec<f64>, Vec<f64>) = if train {
            let mut mean = vec![0.0; self.c];
            let mut var = vec![0.0; self.c];
            for c in 0..self.c {
                let mut s = 0.0;
                for n in 0..dims.n {
                    let base = (n * self.c + c) * dims.vol();
                    for i in 0..dims.vol() {
                        s += xs[base + i];
                    }
                }
                mean[c] = s / m;
                let mut v = 0.0;
                for n in 0..dims.n {
                    let base = (n * self.c + c) * dims.vol();
                    for i in 0..dims.vol() {
                        let d = xs[base + i] - mean[c];
                        v += d * d;
                    }
                }
                var[c] = v / m;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f64> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(x.shape().clone());
        {
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            for n in 0..dims.n {
                for c in 0..self.c {
                    let base = (n * self.c + c) * dims.vol();
                    for i in 0..dims.vol() {
                        let h = (xs[base + i] - mean[c]) * inv_std[c];
                        xh[base + i] = h;
                        ys[base + i] = gamma[c] * h + beta[c];
                    }
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                xhat,
                inv_std,
                dims,
            });
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let dims = cache.dims;
        assert_eq!(grad_out.dims(), &[dims.n, dims.c, dims.d, dims.h, dims.w]);
        let m = (dims.n * dims.vol()) as f64;
        let g = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let gamma = self.gamma.data.as_slice();
        let mut gx = Tensor::zeros(grad_out.shape().clone());

        // Standard batch-norm backward:
        // dβ_c = Σ g, dγ_c = Σ g·x̂,
        // dx = γ·inv_std/m · (m·g − Σg − x̂·Σ(g·x̂))
        let mut sum_g = vec![0.0; self.c];
        let mut sum_gx = vec![0.0; self.c];
        for n in 0..dims.n {
            for c in 0..self.c {
                let base = (n * self.c + c) * dims.vol();
                let mut sg = 0.0;
                let mut sgx = 0.0;
                for i in 0..dims.vol() {
                    sg += g[base + i];
                    sgx += g[base + i] * xh[base + i];
                }
                sum_g[c] += sg;
                sum_gx[c] += sgx;
            }
        }
        {
            let gb = self.beta.grad.as_mut_slice();
            let gg = self.gamma.grad.as_mut_slice();
            for c in 0..self.c {
                gb[c] += sum_g[c];
                gg[c] += sum_gx[c];
            }
        }
        {
            let gxs = gx.as_mut_slice();
            for n in 0..dims.n {
                for c in 0..self.c {
                    let base = (n * self.c + c) * dims.vol();
                    let k = gamma[c] * cache.inv_std[c] / m;
                    for i in 0..dims.vol() {
                        gxs[base + i] = k * (m * g[base + i] - sum_g[c] - xh[base + i] * sum_gx[c]);
                    }
                }
            }
        }
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers(&mut self) -> Vec<&mut Vec<f64>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn name(&self) -> String {
        format!("BatchNorm({})", self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm::new(2);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::rand_uniform([4, 2, 1, 8, 8], -3.0, 7.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1.
        let dims = Dims5::of(&y);
        for c in 0..2 {
            let mut s = 0.0;
            let mut s2 = 0.0;
            let mut cnt = 0.0;
            for n in 0..dims.n {
                for i in 0..dims.vol() {
                    let v = y.as_slice()[(n * 2 + c) * dims.vol() + i];
                    s += v;
                    s2 += v * v;
                    cnt += 1.0;
                }
            }
            let mean = s / cnt;
            let var = s2 / cnt - mean * mean;
            assert!(mean.abs() < 1e-10, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        // Train a few batches to accumulate running stats around mean 4.
        for _ in 0..50 {
            let x = Tensor::rand_uniform([8, 1, 1, 4, 4], 3.0, 5.0, &mut rng);
            let _ = bn.forward(&x, true);
        }
        // Eval on a constant input equal to the accumulated mean: output ≈ 0.
        let x = Tensor::full([1, 1, 1, 4, 4], bn.running_mean[0]);
        let y = bn.forward(&x, false);
        assert!(y.norm_inf() < 1e-6, "{}", y.norm_inf());
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm::new(1);
        bn.gamma.data = Tensor::from_vec([1], vec![2.0]);
        bn.beta.data = Tensor::from_vec([1], vec![1.0]);
        let x = Tensor::from_vec([2, 1, 1, 1, 1], vec![0.0, 2.0]);
        let y = bn.forward(&x, true);
        // x̂ = [-1, 1] (up to eps), y = 2x̂ + 1 = [-1, 3].
        assert!((y[0] + 1.0).abs() < 1e-2);
        assert!((y[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn gradcheck() {
        let bn = BatchNorm::new(3);
        check_layer_gradient(Box::new(bn), &[4, 3, 1, 3, 3], 0.5, 1e-6, 1e-5);
    }

    #[test]
    fn gradcheck_3d() {
        let bn = BatchNorm::new(2);
        check_layer_gradient(Box::new(bn), &[2, 2, 2, 3, 3], -0.2, 1e-6, 1e-5);
    }
}
