//! Batch normalization over NCDHW activations.
//!
//! Channels are statistically independent, so both passes parallelize per
//! channel through [`par_jobs`]: every channel task reads/writes only its
//! own strided activation slabs and statistic slots, in a fixed internal
//! order, so results are bitwise deterministic at any thread count — the
//! same contract as the GEMM convolution kernels.

use crate::layer::{Dims5, Layer};
use crate::param::Param;
use crate::util::SendPtr;
use mgd_tensor::par::par_jobs;
use mgd_tensor::{Element, Tensor};

/// Per-channel batch normalization (statistics over batch × spatial dims),
/// as used after every convolution block in the paper's U-Net (§4.1).
///
/// Only the affine weights γ/β follow the element type `E`; running
/// statistics stay `f64` in every instantiation (they are accumulated in
/// `f64` during training and only read at inference), so an `f32` copy of
/// the layer normalizes with exactly the statistics its `f64` master
/// learned.
#[derive(Clone, Debug)]
pub struct BatchNorm<E: Element = f64> {
    /// Channel count.
    pub c: usize,
    /// Scale γ.
    pub gamma: Param<E>,
    /// Shift β.
    pub beta: Param<E>,
    /// Running mean (inference).
    pub running_mean: Vec<f64>,
    /// Running variance (inference).
    pub running_var: Vec<f64>,
    /// Numerical floor inside the square root.
    pub eps: f64,
    /// Running-statistics update rate.
    pub momentum: f64,
    cache: Option<BnCache>,
}

#[derive(Clone, Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f64>,
    dims: Dims5,
}

impl BatchNorm {
    /// Creates a batch-norm layer for `c` channels.
    pub fn new(c: usize) -> Self {
        BatchNorm {
            c,
            gamma: Param::new(Tensor::ones([c])),
            beta: Param::zeros([c]),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            eps: <f64 as Element>::BN_EPS,
            momentum: 0.1,
            cache: None,
        }
    }
}

impl<E: Element> BatchNorm<E> {
    /// Shared-state inference forward: the per-channel affine map from the
    /// running statistics. `&self` — it reads weights and running stats
    /// only, so concurrent callers can share one layer. `forward(x, false)`
    /// delegates here, so the two are bitwise identical by construction
    /// (the per-channel mean and inverse std are computed in `f64` from the
    /// running statistics and converted once per channel, which is the
    /// identity for `E = f64`).
    pub fn infer(&self, x: &Tensor<E>) -> Tensor<E> {
        let dims = Dims5::of(x);
        assert_eq!(dims.c, self.c, "channel mismatch");
        let vol = dims.vol();
        let (n, c) = (dims.n, self.c);
        let xs = x.as_slice();
        let mut y: Tensor<E> = Tensor::zeros(x.shape().clone());
        let gamma = self.gamma.data.as_slice();
        let beta = self.beta.data.as_slice();
        let eps = self.eps;
        // Inference is a per-channel affine map from the running
        // statistics; x̂ is never materialized.
        let rm = &self.running_mean;
        let rv = &self.running_var;
        let yp = SendPtr(y.as_mut_slice().as_mut_ptr());
        par_jobs(c, 2 * n * vol, |ci| {
            let mean = E::from_f64(rm[ci]);
            let is = E::from_f64(1.0 / (rv[ci] + eps).sqrt());
            let (ga, be) = (gamma[ci], beta[ci]);
            for ni in 0..n {
                let base = (ni * c + ci) * vol;
                // SAFETY: the (·, ci) slabs are disjoint per task.
                let yy = unsafe { std::slice::from_raw_parts_mut(yp.get().add(base), vol) };
                for i in 0..vol {
                    yy[i] = ga * ((xs[base + i] - mean) * is) + be;
                }
            }
        });
        y
    }

    /// Fused in-place inference + LeakyReLU: `x ← leaky(bn(x))` in one
    /// memory walk. The per-element arithmetic is the exact sequence of
    /// [`Self::infer`] followed by the LeakyReLU map — `γ·((x−μ)·σ⁻¹)+β`,
    /// then the negative-slope select — so the result is bitwise identical
    /// to the two-tensor pipeline while allocating nothing. The slab
    /// serving path uses this to skip two activation-sized allocations
    /// (and their extra read/write passes) per conv block.
    pub fn infer_leaky_inplace(&self, x: &mut Tensor<E>, alpha: f64) {
        let dims = Dims5::of(x);
        assert_eq!(dims.c, self.c, "channel mismatch");
        let vol = dims.vol();
        let (n, c) = (dims.n, self.c);
        let gamma = self.gamma.data.as_slice();
        let beta = self.beta.data.as_slice();
        let eps = self.eps;
        let rm = &self.running_mean;
        let rv = &self.running_var;
        let a = E::from_f64(alpha);
        let xp = SendPtr(x.as_mut_slice().as_mut_ptr());
        par_jobs(c, 2 * n * vol, |ci| {
            let mean = E::from_f64(rm[ci]);
            let is = E::from_f64(1.0 / (rv[ci] + eps).sqrt());
            let (ga, be) = (gamma[ci], beta[ci]);
            for ni in 0..n {
                let base = (ni * c + ci) * vol;
                // SAFETY: the (·, ci) slabs are disjoint per task.
                let xx = unsafe { std::slice::from_raw_parts_mut(xp.get().add(base), vol) };
                for v in xx.iter_mut() {
                    let y = ga * ((*v - mean) * is) + be;
                    *v = if y > E::ZERO { y } else { a * y };
                }
            }
        });
    }

    /// Converts the layer to another element type: γ/β cast through `f64`,
    /// running statistics (already `f64`) copied verbatim.
    pub fn cast_as<T: Element>(&self) -> BatchNorm<T> {
        BatchNorm {
            c: self.c,
            gamma: self.gamma.cast_as(),
            beta: self.beta.cast_as(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            eps: self.eps,
            momentum: self.momentum,
            cache: None,
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = Dims5::of(x);
        assert_eq!(dims.c, self.c, "channel mismatch");
        let vol = dims.vol();
        let (n, c) = (dims.n, self.c);
        let m = (n * vol) as f64;
        let xs = x.as_slice();
        let mut y: Tensor = Tensor::zeros(x.shape().clone());
        let gamma = self.gamma.data.as_slice();
        let beta = self.beta.data.as_slice();
        let eps = self.eps;

        if train {
            let momentum = self.momentum;
            let mut inv_std = vec![0.0; c];
            let mut xhat: Tensor = Tensor::zeros(x.shape().clone());
            {
                let yp = SendPtr(y.as_mut_slice().as_mut_ptr());
                let xhp = SendPtr(xhat.as_mut_slice().as_mut_ptr());
                let isp = SendPtr(inv_std.as_mut_ptr());
                let rmp = SendPtr(self.running_mean.as_mut_ptr());
                let rvp = SendPtr(self.running_var.as_mut_ptr());
                par_jobs(c, 4 * n * vol, |ci| {
                    // Statistics accumulate in the same (n-major) order as
                    // the serial sweep, so values are unchanged.
                    let mut s = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * vol;
                        for i in 0..vol {
                            s += xs[base + i];
                        }
                    }
                    let mean = s / m;
                    let mut v = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * vol;
                        for i in 0..vol {
                            let d = xs[base + i] - mean;
                            v += d * d;
                        }
                    }
                    let var = v / m;
                    let is = 1.0 / (var + eps).sqrt();
                    // SAFETY: channel task `ci` exclusively owns slot ci of
                    // every per-channel statistic vector.
                    unsafe {
                        *isp.get().add(ci) = is;
                        let rm = rmp.get().add(ci);
                        *rm = (1.0 - momentum) * *rm + momentum * mean;
                        let rv = rvp.get().add(ci);
                        *rv = (1.0 - momentum) * *rv + momentum * var;
                    }
                    let (ga, be) = (gamma[ci], beta[ci]);
                    for ni in 0..n {
                        let base = (ni * c + ci) * vol;
                        // SAFETY: the (·, ci) slabs are disjoint per task.
                        let (xh, yy) = unsafe {
                            (
                                std::slice::from_raw_parts_mut(xhp.get().add(base), vol),
                                std::slice::from_raw_parts_mut(yp.get().add(base), vol),
                            )
                        };
                        for i in 0..vol {
                            let h = (xs[base + i] - mean) * is;
                            xh[i] = h;
                            yy[i] = ga * h + be;
                        }
                    }
                });
            }
            self.cache = Some(BnCache {
                xhat,
                inv_std,
                dims,
            });
        } else {
            return self.infer(x);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let dims = cache.dims;
        assert_eq!(grad_out.dims(), &[dims.n, dims.c, dims.d, dims.h, dims.w]);
        let vol = dims.vol();
        let (n, c) = (dims.n, self.c);
        let m = (n * vol) as f64;
        let g = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let inv_std = &cache.inv_std;
        let gamma = self.gamma.data.as_slice();
        let mut gx: Tensor = Tensor::zeros(grad_out.shape().clone());

        // Standard batch-norm backward, one task per channel:
        // dβ_c = Σ g, dγ_c = Σ g·x̂,
        // dx = γ·inv_std/m · (m·g − Σg − x̂·Σ(g·x̂))
        let gxp = SendPtr(gx.as_mut_slice().as_mut_ptr());
        let gbp = SendPtr(self.beta.grad.as_mut_slice().as_mut_ptr());
        let ggp = SendPtr(self.gamma.grad.as_mut_slice().as_mut_ptr());
        par_jobs(c, 3 * n * vol, |ci| {
            let mut sum_g = 0.0;
            let mut sum_gx = 0.0;
            for ni in 0..n {
                let base = (ni * c + ci) * vol;
                let mut sg = 0.0;
                let mut sgx = 0.0;
                for i in 0..vol {
                    sg += g[base + i];
                    sgx += g[base + i] * xh[base + i];
                }
                sum_g += sg;
                sum_gx += sgx;
            }
            // SAFETY: each channel task owns exactly slot ci of both
            // parameter gradients.
            unsafe {
                *gbp.get().add(ci) += sum_g;
                *ggp.get().add(ci) += sum_gx;
            }
            let k = gamma[ci] * inv_std[ci] / m;
            for ni in 0..n {
                let base = (ni * c + ci) * vol;
                // SAFETY: the (·, ci) slabs are disjoint per task.
                let gxs = unsafe { std::slice::from_raw_parts_mut(gxp.get().add(base), vol) };
                for i in 0..vol {
                    gxs[i] = k * (m * g[base + i] - sum_g - xh[base + i] * sum_gx);
                }
            }
        });
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers(&mut self) -> Vec<&mut Vec<f64>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn name(&self) -> String {
        format!("BatchNorm({})", self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradient, FD_EPS, FD_TOL_STAT};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm::new(2);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::rand_uniform([4, 2, 1, 8, 8], -3.0, 7.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1.
        let dims = Dims5::of(&y);
        for c in 0..2 {
            let mut s = 0.0;
            let mut s2 = 0.0;
            let mut cnt = 0.0;
            for n in 0..dims.n {
                for i in 0..dims.vol() {
                    let v = y.as_slice()[(n * 2 + c) * dims.vol() + i];
                    s += v;
                    s2 += v * v;
                    cnt += 1.0;
                }
            }
            let mean = s / cnt;
            let var = s2 / cnt - mean * mean;
            assert!(mean.abs() < 1e-10, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        // Train a few batches to accumulate running stats around mean 4.
        for _ in 0..50 {
            let x = Tensor::rand_uniform([8, 1, 1, 4, 4], 3.0, 5.0, &mut rng);
            let _ = bn.forward(&x, true);
        }
        // Eval on a constant input equal to the accumulated mean: output ≈ 0.
        let x = Tensor::full([1, 1, 1, 4, 4], bn.running_mean[0]);
        let y = bn.forward(&x, false);
        assert!(y.norm_inf() < 1e-6, "{}", y.norm_inf());
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm::new(1);
        bn.gamma.data = Tensor::from_vec([1], vec![2.0]);
        bn.beta.data = Tensor::from_vec([1], vec![1.0]);
        let x = Tensor::from_vec([2, 1, 1, 1, 1], vec![0.0, 2.0]);
        let y = bn.forward(&x, true);
        // x̂ = [-1, 1] (up to eps), y = 2x̂ + 1 = [-1, 3].
        assert!((y[0] + 1.0).abs() < 1e-2);
        assert!((y[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn forward_backward_are_bitwise_deterministic() {
        // The per-channel jobs write disjoint slabs in a fixed order, so
        // repeated runs must agree bit for bit at any thread count.
        let mut rng = StdRng::seed_from_u64(17);
        let x = Tensor::rand_uniform([3, 4, 1, 16, 16], -2.0, 2.0, &mut rng);
        let g = Tensor::rand_uniform([3, 4, 1, 16, 16], -1.0, 1.0, &mut rng);
        let run = |train: bool| {
            let mut bn = BatchNorm::new(4);
            let y = bn.forward(&x, train);
            let gx = train.then(|| bn.backward(&g));
            (y, gx, bn.gamma.grad.clone(), bn.running_mean.clone())
        };
        for train in [false, true] {
            let (y1, gx1, gg1, rm1) = run(train);
            let (y2, gx2, gg2, rm2) = run(train);
            assert!(y1
                .as_slice()
                .iter()
                .zip(y2.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(gg1, gg2);
            assert_eq!(rm1, rm2);
            if let (Some(a), Some(b)) = (gx1, gx2) {
                assert!(a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
    }

    #[test]
    fn gradcheck() {
        let bn = BatchNorm::new(3);
        check_layer_gradient(Box::new(bn), &[4, 3, 1, 3, 3], 0.5, FD_EPS, FD_TOL_STAT);
    }

    #[test]
    fn gradcheck_3d() {
        let bn = BatchNorm::new(2);
        check_layer_gradient(Box::new(bn), &[2, 2, 2, 3, 3], -0.2, FD_EPS, FD_TOL_STAT);
    }
}
