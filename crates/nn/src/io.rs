//! Weight checkpointing.
//!
//! Two layers of persistence:
//!
//! - [`WeightSnapshot`] — architecture-agnostic weight/buffer capture
//!   through the [`Model`] trait: works for any network the trainers
//!   accept (including a `Box<dyn Model>`), but restoring requires a
//!   structurally identical instance to load into.
//! - [`Checkpoint`] — the self-describing U-Net checkpoint: carries the
//!   [`UNetConfig`] so the exact architecture (including adapted depths)
//!   can be rebuilt from the file alone.

use crate::layer::Layer;
use crate::model::Model;
use crate::unet::{UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Architecture-agnostic parameter/buffer snapshot taken through the
/// [`Model`] trait.
#[derive(Clone, Serialize, Deserialize)]
pub struct WeightSnapshot {
    /// Model identifier at capture time (restore sanity check).
    pub model_name: String,
    /// Element type the weights were captured at (`"f64"` for master
    /// weights; empty in pre-tag snapshots, normalized to `"f64"` by
    /// [`WeightSnapshot::precision`]). Values are stored as `f64` either
    /// way, so restoring converts implicitly; the tag records how much
    /// precision the numbers actually carry.
    #[serde(default)]
    pub precision: String,
    /// Flat parameter tensors in `params()` order (shape, data).
    pub tensors: Vec<(Vec<usize>, Vec<f64>)>,
    /// Persistent buffers in `buffers()` order.
    pub buffers: Vec<Vec<f64>>,
}

impl WeightSnapshot {
    /// Captures the weights of any model (always at `f64` master
    /// precision — training never runs in `f32`).
    pub fn capture<M: Model + ?Sized>(net: &mut M) -> Self {
        let model_name = net.name();
        let tensors = net
            .params()
            .iter()
            .map(|p| (p.data.dims().to_vec(), p.data.as_slice().to_vec()))
            .collect();
        let buffers = net.buffers().iter().map(|b| b.to_vec()).collect();
        WeightSnapshot {
            model_name,
            precision: String::from("f64"),
            tensors,
            buffers,
        }
    }

    /// Capture-time element type, with pre-tag snapshots (empty field)
    /// reading as `"f64"`.
    pub fn precision(&self) -> &str {
        if self.precision.is_empty() {
            "f64"
        } else {
            &self.precision
        }
    }

    /// Loads the snapshot into a structurally identical model instance.
    ///
    /// Returns an error (leaving `net` partially updated only on the
    /// matching prefix of parameters — callers should discard it then)
    /// when the parameter or buffer structure disagrees.
    pub fn restore<M: Model + ?Sized>(&self, net: &mut M) -> Result<(), String> {
        let model_name = net.name();
        let mut params = net.params();
        if params.len() != self.tensors.len() {
            return Err(format!(
                "snapshot has {} parameter tensors, model '{model_name}' has {}",
                self.tensors.len(),
                params.len()
            ));
        }
        for (i, (p, (shape, data))) in params.iter_mut().zip(self.tensors.iter()).enumerate() {
            if p.data.dims() != &shape[..] {
                return Err(format!(
                    "parameter {i}: snapshot shape {:?} != model shape {:?}",
                    shape,
                    p.data.dims()
                ));
            }
            p.data.as_mut_slice().copy_from_slice(data);
        }
        let mut bufs = net.buffers();
        if bufs.len() != self.buffers.len() {
            return Err(format!(
                "snapshot has {} buffers, model has {}",
                self.buffers.len(),
                bufs.len()
            ));
        }
        for (i, (dst, src)) in bufs.iter_mut().zip(self.buffers.iter()).enumerate() {
            if dst.len() != src.len() {
                return Err(format!(
                    "buffer {i}: snapshot len {} != model len {}",
                    src.len(),
                    dst.len()
                ));
            }
            dst.copy_from_slice(src);
        }
        Ok(())
    }

    /// Serializes to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let s = serde_json::to_string(self).map_err(std::io::Error::other)?;
        f.write_all(s.as_bytes())
    }

    /// Deserializes from a JSON file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let mut s = String::new();
        std::fs::File::open(path)?.read_to_string(&mut s)?;
        serde_json::from_str(&s).map_err(std::io::Error::other)
    }
}

/// A self-describing U-Net checkpoint.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture descriptor.
    pub config: UNetConfig,
    /// Flat parameter tensors in `params()` order (shape, data).
    pub tensors: Vec<(Vec<usize>, Vec<f64>)>,
    /// Persistent buffers in `buffers()` order (batch-norm running stats).
    #[serde(default)]
    pub buffers: Vec<Vec<f64>>,
}

impl Checkpoint {
    /// Captures the weights of a network.
    pub fn from_net(net: &mut UNet) -> Self {
        let config = net.cfg;
        let tensors = net
            .params()
            .iter()
            .map(|p| (p.data.dims().to_vec(), p.data.as_slice().to_vec()))
            .collect();
        let buffers = net.buffers().iter().map(|b| b.to_vec()).collect();
        Checkpoint {
            config,
            tensors,
            buffers,
        }
    }

    /// Rebuilds the network and loads the weights.
    pub fn into_net(self) -> UNet {
        let mut net = UNet::new(self.config);
        {
            let mut params = net.params();
            assert_eq!(
                params.len(),
                self.tensors.len(),
                "checkpoint/param count mismatch"
            );
            for (p, (shape, data)) in params.iter_mut().zip(self.tensors.iter()) {
                assert_eq!(p.data.dims(), &shape[..], "checkpoint shape mismatch");
                p.data.as_mut_slice().copy_from_slice(data);
            }
        }
        {
            let mut bufs = net.buffers();
            assert_eq!(
                bufs.len(),
                self.buffers.len(),
                "checkpoint/buffer count mismatch"
            );
            for (dst, src) in bufs.iter_mut().zip(self.buffers.iter()) {
                assert_eq!(dst.len(), src.len(), "checkpoint buffer length mismatch");
                dst.copy_from_slice(src);
            }
        }
        net
    }

    /// Serializes to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let s = serde_json::to_string(self).map_err(std::io::Error::other)?;
        f.write_all(s.as_bytes())
    }

    /// Deserializes from a JSON file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let mut s = String::new();
        std::fs::File::open(path)?.read_to_string(&mut s)?;
        serde_json::from_str(&s).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgd_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkpoint_roundtrip_preserves_outputs() {
        let cfg = UNetConfig {
            depth: 2,
            base_filters: 2,
            two_d: true,
            seed: 17,
            ..Default::default()
        };
        let mut net = UNet::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y0 = net.predict(&x);
        let ckpt = Checkpoint::from_net(&mut net);
        let dir = std::env::temp_dir().join("mgd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        ckpt.save(&path).unwrap();
        let mut net2 = Checkpoint::load(&path).unwrap().into_net();
        let y1 = net2.predict(&x);
        assert!(y0.rel_l2_error(&y1) < 1e-15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weight_snapshot_roundtrip_through_model_trait() {
        let cfg = UNetConfig {
            depth: 2,
            base_filters: 2,
            two_d: true,
            seed: 21,
            ..Default::default()
        };
        let mut net: Box<dyn Model> = Box::new(UNet::new(cfg));
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y0 = net.predict(&x);
        let snap = WeightSnapshot::capture(&mut net);
        let dir = std::env::temp_dir().join("mgd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        // Restore into a differently seeded but structurally equal net.
        let mut other = UNet::new(UNetConfig { seed: 99, ..cfg });
        assert!(other.predict(&x).rel_l2_error(&y0) > 1e-6, "different init");
        WeightSnapshot::load(&path)
            .unwrap()
            .restore(&mut other)
            .unwrap();
        assert!(other.predict(&x).rel_l2_error(&y0) < 1e-15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weight_snapshot_rejects_structure_mismatch() {
        let cfg = UNetConfig {
            depth: 1,
            base_filters: 2,
            two_d: true,
            seed: 1,
            ..Default::default()
        };
        let mut net = UNet::new(cfg);
        let snap = WeightSnapshot::capture(&mut net);
        let mut deeper = net.deepened();
        assert!(snap.restore(&mut deeper).is_err());
    }

    #[test]
    fn checkpoint_preserves_adapted_depth() {
        let cfg = UNetConfig {
            depth: 1,
            base_filters: 2,
            two_d: true,
            seed: 2,
            ..Default::default()
        };
        let net = UNet::new(cfg);
        let mut deeper = net.deepened();
        let ckpt = Checkpoint::from_net(&mut deeper);
        assert_eq!(ckpt.config.depth, 2);
        let mut restored = ckpt.into_net();
        assert_eq!(restored.cfg.depth, 2);
        let y = restored.predict(&Tensor::zeros([1, 1, 1, 8, 8]));
        assert_eq!(y.dims(), &[1, 1, 1, 8, 8]);
    }
}
