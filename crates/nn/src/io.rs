//! Weight checkpointing.
//!
//! Parameters are serialized in `Layer::params()` order together with the
//! network's [`UNetConfig`], so a checkpoint is self-describing enough to
//! rebuild the exact architecture (including adapted depths) and reload.

use crate::layer::Layer;
use crate::unet::{UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// A self-describing U-Net checkpoint.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture descriptor.
    pub config: UNetConfig,
    /// Flat parameter tensors in `params()` order (shape, data).
    pub tensors: Vec<(Vec<usize>, Vec<f64>)>,
    /// Persistent buffers in `buffers()` order (batch-norm running stats).
    #[serde(default)]
    pub buffers: Vec<Vec<f64>>,
}

impl Checkpoint {
    /// Captures the weights of a network.
    pub fn from_net(net: &mut UNet) -> Self {
        let config = net.cfg;
        let tensors = net
            .params()
            .iter()
            .map(|p| (p.data.dims().to_vec(), p.data.as_slice().to_vec()))
            .collect();
        let buffers = net.buffers().iter().map(|b| b.to_vec()).collect();
        Checkpoint { config, tensors, buffers }
    }

    /// Rebuilds the network and loads the weights.
    pub fn into_net(self) -> UNet {
        let mut net = UNet::new(self.config);
        {
            let mut params = net.params();
            assert_eq!(params.len(), self.tensors.len(), "checkpoint/param count mismatch");
            for (p, (shape, data)) in params.iter_mut().zip(self.tensors.iter()) {
                assert_eq!(p.data.dims(), &shape[..], "checkpoint shape mismatch");
                p.data.as_mut_slice().copy_from_slice(data);
            }
        }
        {
            let mut bufs = net.buffers();
            assert_eq!(bufs.len(), self.buffers.len(), "checkpoint/buffer count mismatch");
            for (dst, src) in bufs.iter_mut().zip(self.buffers.iter()) {
                assert_eq!(dst.len(), src.len(), "checkpoint buffer length mismatch");
                dst.copy_from_slice(src);
            }
        }
        net
    }

    /// Serializes to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let s = serde_json::to_string(self).map_err(std::io::Error::other)?;
        f.write_all(s.as_bytes())
    }

    /// Deserializes from a JSON file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let mut s = String::new();
        std::fs::File::open(path)?.read_to_string(&mut s)?;
        serde_json::from_str(&s).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgd_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkpoint_roundtrip_preserves_outputs() {
        let cfg = UNetConfig { depth: 2, base_filters: 2, two_d: true, seed: 17, ..Default::default() };
        let mut net = UNet::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y0 = net.predict(&x);
        let ckpt = Checkpoint::from_net(&mut net);
        let dir = std::env::temp_dir().join("mgd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        ckpt.save(&path).unwrap();
        let mut net2 = Checkpoint::load(&path).unwrap().into_net();
        let y1 = net2.predict(&x);
        assert!(y0.rel_l2_error(&y1) < 1e-15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_preserves_adapted_depth() {
        let cfg = UNetConfig { depth: 1, base_filters: 2, two_d: true, seed: 2, ..Default::default() };
        let net = UNet::new(cfg);
        let mut deeper = net.deepened();
        let ckpt = Checkpoint::from_net(&mut deeper);
        assert_eq!(ckpt.config.depth, 2);
        let mut restored = ckpt.into_net();
        assert_eq!(restored.cfg.depth, 2);
        let y = restored.predict(&Tensor::zeros([1, 1, 1, 8, 8]));
        assert_eq!(y.dims(), &[1, 1, 1, 8, 8]);
    }
}
