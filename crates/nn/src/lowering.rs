//! Shared im2col / col2im lowering for the GEMM convolution backend.
//!
//! All four convolution passes in this crate reduce to one matrix product
//! per sample (computed by [`mgd_tensor::matmul`]):
//!
//! | pass                        | product                                     |
//! |-----------------------------|---------------------------------------------|
//! | `Conv3d` forward            | `Y = W · im2col(X)`                          |
//! | `Conv3d` ∂input             | `dX = col2im(Wᵀ · dY)`                       |
//! | `Conv3d` ∂weight            | `dW += dY · im2col(X)ᵀ`                      |
//! | `ConvTranspose3d` forward   | `Y = col2im(Vᵀ · X) + b`                     |
//! | `ConvTranspose3d` ∂input    | `dX = V · im2col(dY)`                        |
//! | `ConvTranspose3d` ∂weight   | `dV += X · im2col(dY)ᵀ`                      |
//!
//! where the patch matrix of a sample gathers one `(channel, kernel-tap)`
//! row per matrix row and one sliding-window position per column. A
//! transpose convolution is the adjoint of a convolution with the same
//! kernel/stride/padding, so the *same two* gather/scatter routines serve
//! both layers — `Conv3d` lowers over its input grid, `ConvTranspose3d`
//! over its output grid.
//!
//! Both routines parallelize over patch rows (gather) or channels
//! (scatter); every task writes a disjoint slice in a fixed order, so
//! results are bitwise deterministic for any thread count.

use crate::layer::Triple;
use crate::util::SendPtr;
use mgd_tensor::par::par_jobs;
use mgd_tensor::Element;
use serde::{Deserialize, Serialize};

/// Which kernel implementation a convolution layer runs.
///
/// `Gemm` (the default) lowers onto the blocked matmul of
/// [`mgd_tensor::matmul`]; `Direct` keeps the original scalar triple-loop
/// kernels. The two are numerically equivalent to f64 round-off (enforced
/// by property tests), so `Direct` serves as a bisectable reference and a
/// fallback for debugging.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvBackend {
    /// Scalar sliding-window loops (reference implementation).
    Direct,
    /// im2col / col2im lowering onto the blocked, register-tiled GEMM.
    #[default]
    Gemm,
}

/// Sliding-window geometry of one lowering: `c` channels of a
/// `dims`-shaped grid gathered through `kernel`/`stride`/`padding` windows
/// anchored at `out` positions.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConvGeom {
    /// Channels of the gathered/scattered grid.
    pub c: usize,
    /// Spatial extents (d, h, w) of the gathered/scattered grid.
    pub dims: Triple,
    /// Kernel extents.
    pub kernel: Triple,
    /// Strides.
    pub stride: Triple,
    /// Zero padding.
    pub padding: Triple,
    /// Window-anchor counts (the patch-matrix column space).
    pub out: Triple,
}

impl ConvGeom {
    /// Kernel volume.
    pub fn kvol(&self) -> usize {
        self.kernel.0 * self.kernel.1 * self.kernel.2
    }

    /// Patch-matrix rows: one per `(channel, kernel tap)`.
    pub fn rows(&self) -> usize {
        self.c * self.kvol()
    }

    /// Patch-matrix columns: one per window position.
    pub fn cols(&self) -> usize {
        self.out.0 * self.out.1 * self.out.2
    }

    /// Grid volume per channel.
    pub fn vol(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }
}

/// The valid anchor range `[lo, hi)` along one axis for kernel tap `k`:
/// anchors `o` with `0 <= o*stride + k - pad < extent`.
#[inline]
fn anchor_range(
    k: usize,
    stride: usize,
    pad: usize,
    extent: usize,
    anchors: usize,
) -> (usize, usize) {
    let lo = if k >= pad {
        0
    } else {
        (pad - k).div_ceil(stride)
    };
    let hi = if extent + pad > k {
        ((extent + pad - k - 1) / stride + 1).min(anchors)
    } else {
        0
    };
    (lo.min(hi), hi)
}

/// Gathers `src` (one sample, `c × dims` row-major) into the patch matrix
/// `col` (`rows() × cols()` row-major). Out-of-grid taps become zeros.
pub(crate) fn im2col<E: Element>(g: &ConvGeom, src: &[E], col: &mut [E]) {
    im2col_range(g, src, col, 0, g.out.0 * g.out.1);
}

/// [`im2col`] restricted to anchor rows `[ar0, ar1)` of the flattened
/// `(o_d, o_h)` space — the column blocks `[ar0*ow, ar1*ow)` of the full
/// patch matrix. Chunking along this axis keeps the patch matrix
/// cache-resident at megavoxel grids, where materializing all of it would
/// turn the GEMM lowering memory-bound.
pub(crate) fn im2col_range<E: Element>(
    g: &ConvGeom,
    src: &[E],
    col: &mut [E],
    ar0: usize,
    ar1: usize,
) {
    let rows = g.rows();
    let cols = (ar1 - ar0) * g.out.2;
    assert_eq!(src.len(), g.c * g.vol());
    assert_eq!(col.len(), rows * cols);
    let (_, kh, kw) = g.kernel;
    let (sd, sh, sw) = g.stride;
    let (pd, ph, pw) = g.padding;
    let (dd, dh, dw) = g.dims;
    let (od, oh, ow) = g.out;
    let _ = od;
    let colptr = SendPtr(col.as_mut_ptr());
    par_jobs(rows, cols, |r| {
        // SAFETY: row task `r` exclusively owns col[r*cols .. (r+1)*cols].
        let dst = unsafe { std::slice::from_raw_parts_mut(colptr.get().add(r * cols), cols) };
        let (ci, tap) = (r / g.kvol(), r % g.kvol());
        let (kdi, rem) = (tap / (kh * kw), tap % (kh * kw));
        let (khi, kwi) = (rem / kw, rem % kw);
        let (dlo, dhi) = anchor_range(kdi, sd, pd, dd, g.out.0);
        let (hlo, hhi) = anchor_range(khi, sh, ph, dh, oh);
        let (wlo, whi) = anchor_range(kwi, sw, pw, dw, ow);
        let chan = &src[ci * dd * dh * dw..(ci + 1) * dd * dh * dw];
        let mut idx = 0usize;
        for a in ar0..ar1 {
            let (o_d, o_h) = (a / oh, a % oh);
            if o_d < dlo || o_d >= dhi || o_h < hlo || o_h >= hhi {
                dst[idx..idx + ow].fill(E::ZERO);
                idx += ow;
                continue;
            }
            let id = o_d * sd + kdi - pd;
            let ih = o_h * sh + khi - ph;
            let srow = (id * dh + ih) * dw;
            dst[idx..idx + wlo].fill(E::ZERO);
            if whi > wlo {
                let iw0 = wlo * sw + kwi - pw;
                if sw == 1 {
                    dst[idx + wlo..idx + whi]
                        .copy_from_slice(&chan[srow + iw0..srow + iw0 + (whi - wlo)]);
                } else {
                    for t in 0..whi - wlo {
                        dst[idx + wlo + t] = chan[srow + iw0 + t * sw];
                    }
                }
            }
            dst[idx + whi..idx + ow].fill(E::ZERO);
            idx += ow;
        }
    });
}

/// Scatters the patch matrix `col` back onto `dst` (one sample,
/// `c × dims` row-major), **accumulating** overlapping windows.
///
/// This is the exact adjoint of [`im2col`]; rows map to the same
/// `(channel, tap)` pairs, so tasks parallelize over channels (each channel
/// owns a disjoint `dst` slab).
pub(crate) fn col2im_accumulate<E: Element>(g: &ConvGeom, col: &[E], dst: &mut [E]) {
    col2im_range_accumulate(g, col, dst, 0, g.out.0 * g.out.1);
}

/// [`col2im_accumulate`] restricted to anchor rows `[ar0, ar1)` of the
/// flattened `(o_d, o_h)` space. Successive chunks scatter onto overlapping
/// window footprints, so chunks must be processed sequentially (tasks
/// inside one chunk still parallelize over channels).
pub(crate) fn col2im_range_accumulate<E: Element>(
    g: &ConvGeom,
    col: &[E],
    dst: &mut [E],
    ar0: usize,
    ar1: usize,
) {
    let rows = g.rows();
    let cols = (ar1 - ar0) * g.out.2;
    assert_eq!(dst.len(), g.c * g.vol());
    assert_eq!(col.len(), rows * cols);
    let (_, kh, kw) = g.kernel;
    let (sd, sh, sw) = g.stride;
    let (pd, ph, pw) = g.padding;
    let (dd, dh, dw) = g.dims;
    let (_, oh, ow) = g.out;
    let kvol = g.kvol();
    let dstptr = SendPtr(dst.as_mut_ptr());
    par_jobs(g.c, kvol * cols, |ci| {
        // SAFETY: channel task `ci` exclusively owns its dst slab.
        let chan = unsafe {
            std::slice::from_raw_parts_mut(dstptr.get().add(ci * dd * dh * dw), dd * dh * dw)
        };
        for tap in 0..kvol {
            let r = ci * kvol + tap;
            let src = &col[r * cols..(r + 1) * cols];
            let (kdi, rem) = (tap / (kh * kw), tap % (kh * kw));
            let (khi, kwi) = (rem / kw, rem % kw);
            let (dlo, dhi) = anchor_range(kdi, sd, pd, dd, g.out.0);
            let (hlo, hhi) = anchor_range(khi, sh, ph, dh, oh);
            let (wlo, whi) = anchor_range(kwi, sw, pw, dw, ow);
            if whi <= wlo {
                continue;
            }
            let iw0 = wlo * sw + kwi - pw;
            for a in ar0..ar1 {
                let (o_d, o_h) = (a / oh, a % oh);
                if o_d < dlo || o_d >= dhi || o_h < hlo || o_h >= hhi {
                    continue;
                }
                let id = o_d * sd + kdi - pd;
                let ih = o_h * sh + khi - ph;
                let drow = (id * dh + ih) * dw;
                let srow = (a - ar0) * ow;
                if sw == 1 {
                    for t in 0..whi - wlo {
                        chan[drow + iw0 + t] += src[srow + wlo + t];
                    }
                } else {
                    for t in 0..whi - wlo {
                        chan[drow + iw0 + t * sw] += src[srow + wlo + t];
                    }
                }
            }
        }
    });
}

/// Reusable per-layer lowering scratch: the patch-matrix buffers of the
/// GEMM backend, grown on demand and kept across calls so steady-state
/// training does no per-call allocation.
///
/// `Clone` intentionally produces an *empty* scratch: replicated models
/// (data-parallel workers, [`crate::unet::UNet::deepened`]) must not drag
/// megabytes of transient buffers through the copy.
#[derive(Debug, Default)]
pub(crate) struct Scratch<E: Element = f64> {
    /// Patch matrix of the chunk currently being processed.
    pub col: Vec<E>,
    /// Second patch buffer (data-gradient product target in backward).
    pub col2: Vec<E>,
    /// Contiguous copy of a strided row-chunk operand (gradient or input
    /// columns of one chunk).
    pub tmp: Vec<E>,
    /// GEMM output chunk before being scattered into the strided result.
    pub ctmp: Vec<E>,
    /// Patch matrices of the whole last forward batch, cached for the
    /// weight-gradient GEMM when within [`PATCH_CACHE_MAX`].
    pub cached: Vec<E>,
    /// Whether `cached` holds the last training forward's patch matrices.
    pub cached_valid: bool,
}

impl<E: Element> Clone for Scratch<E> {
    fn clone(&self) -> Self {
        Scratch::default()
    }
}

/// Largest total patch-matrix element count (per layer, whole batch) kept
/// alive between forward and backward: 2^23 elements = 64 MiB of f64.
/// Above this, backward re-gathers patches per sample from the cached
/// input instead.
pub(crate) const PATCH_CACHE_MAX: usize = 1 << 23;

/// Target element count of one patch-matrix chunk (2^20 ≈ 8 MiB of f64):
/// large enough to amortize GEMM packing, small enough to stay
/// cache-resident so the lowering never round-trips a megavoxel patch
/// matrix through DRAM.
pub(crate) const CHUNK_ELEMS: usize = 1 << 20;

/// Splits a sample's anchor rows (flattened `(o_d, o_h)` space) into
/// chunks of roughly [`CHUNK_ELEMS`] patch elements each, returned as an
/// iterator of `(ar0, ar1)` ranges.
pub(crate) fn anchor_chunks(g: &ConvGeom) -> impl Iterator<Item = (usize, usize)> {
    anchor_chunks_range(g, 0, g.out.0 * g.out.1)
}

/// [`anchor_chunks`] restricted to anchor rows `[ar0, ar1)` — the chunking
/// used by the slab-decomposed spatial forward, where each rank only
/// computes its owned output rows. Chunk boundaries never change computed
/// values (each output element is produced by one GEMM over the full
/// shared dimension), so restricting the range preserves bitwise equality
/// with the full-grid pass.
pub(crate) fn anchor_chunks_range(
    g: &ConvGeom,
    ar0: usize,
    ar1: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let rows = ar1 - ar0;
    let per_row = g.rows() * g.out.2;
    let step = (CHUNK_ELEMS / per_row.max(1)).clamp(1, rows.max(1));
    (0..rows.div_ceil(step)).map(move |i| (ar0 + i * step, (ar0 + (i + 1) * step).min(ar1)))
}

/// Bias gradient `gb[oc] += Σ_{n,voxel} grad[n, oc, voxel]` shared by
/// `Conv3d` and `ConvTranspose3d`, parallel over output channels (each
/// task owns exactly one accumulator slot).
pub(crate) fn bias_grad(grad: &[f64], n: usize, c: usize, vol: usize, gb: &mut [f64]) {
    assert_eq!(grad.len(), n * c * vol);
    assert_eq!(gb.len(), c);
    let gbptr = SendPtr(gb.as_mut_ptr());
    par_jobs(c, n * vol, |oc| {
        let mut s = 0.0;
        for ni in 0..n {
            let base = (ni * c + oc) * vol;
            for v in &grad[base..base + vol] {
                s += v;
            }
        }
        // SAFETY: each oc task owns exactly gb[oc].
        unsafe { *gbptr.get().add(oc) += s };
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ConvGeom {
        ConvGeom {
            c: 2,
            dims: (1, 4, 5),
            kernel: (1, 3, 3),
            stride: (1, 1, 1),
            padding: (0, 1, 1),
            out: (1, 4, 5),
        }
    }

    /// Brute-force reference gather.
    fn im2col_naive(g: &ConvGeom, src: &[f64]) -> Vec<f64> {
        let mut col = vec![0.0; g.rows() * g.cols()];
        let (_, kh, kw) = g.kernel;
        for r in 0..g.rows() {
            let (ci, tap) = (r / g.kvol(), r % g.kvol());
            let (kdi, rem) = (tap / (kh * kw), tap % (kh * kw));
            let (khi, kwi) = (rem / kw, rem % kw);
            let mut p = 0;
            for o_d in 0..g.out.0 {
                for o_h in 0..g.out.1 {
                    for o_w in 0..g.out.2 {
                        let id = (o_d * g.stride.0 + kdi) as isize - g.padding.0 as isize;
                        let ih = (o_h * g.stride.1 + khi) as isize - g.padding.1 as isize;
                        let iw = (o_w * g.stride.2 + kwi) as isize - g.padding.2 as isize;
                        let inside = id >= 0
                            && (id as usize) < g.dims.0
                            && ih >= 0
                            && (ih as usize) < g.dims.1
                            && iw >= 0
                            && (iw as usize) < g.dims.2;
                        if inside {
                            let off = ((ci * g.dims.0 + id as usize) * g.dims.1 + ih as usize)
                                * g.dims.2
                                + iw as usize;
                            col[r * g.cols() + p] = src[off];
                        }
                        p += 1;
                    }
                }
            }
        }
        col
    }

    #[test]
    fn im2col_matches_naive_gather() {
        for g in [
            geom(),
            ConvGeom {
                c: 3,
                dims: (4, 4, 4),
                kernel: (3, 3, 3),
                stride: (1, 1, 1),
                padding: (1, 1, 1),
                out: (4, 4, 4),
            },
            ConvGeom {
                c: 1,
                dims: (1, 6, 6),
                kernel: (1, 3, 3),
                stride: (1, 2, 2),
                padding: (0, 1, 1),
                out: (1, 3, 3),
            },
            ConvGeom {
                c: 2,
                dims: (3, 6, 10),
                kernel: (2, 2, 2),
                stride: (2, 2, 2),
                padding: (0, 0, 0),
                out: (1, 3, 5),
            },
        ] {
            let src: Vec<f64> = (0..g.c * g.vol()).map(|i| i as f64 + 0.5).collect();
            let mut col = vec![f64::NAN; g.rows() * g.cols()];
            im2col(&g, &src, &mut col);
            assert_eq!(col, im2col_naive(&g, &src), "geom {g:?}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for random-ish x, c — the
        // defining property that makes the backward lowerings correct.
        let g = ConvGeom {
            c: 2,
            dims: (2, 5, 4),
            kernel: (2, 3, 2),
            stride: (1, 2, 1),
            padding: (1, 1, 1),
            out: (3, 3, 5),
        };
        let x: Vec<f64> = (0..g.c * g.vol())
            .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
            .collect();
        let cmat: Vec<f64> = (0..g.rows() * g.cols())
            .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
            .collect();
        let mut col = vec![0.0; g.rows() * g.cols()];
        im2col(&g, &x, &mut col);
        let mut back = vec![0.0; g.c * g.vol()];
        col2im_accumulate(&g, &cmat, &mut back);
        let lhs: f64 = col.iter().zip(&cmat).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn chunked_gather_scatter_matches_whole() {
        let g = ConvGeom {
            c: 2,
            dims: (3, 5, 4),
            kernel: (2, 3, 2),
            stride: (1, 1, 2),
            padding: (1, 1, 0),
            out: (4, 5, 2),
        };
        let src: Vec<f64> = (0..g.c * g.vol()).map(|i| (i as f64).sin()).collect();
        let mut whole = vec![0.0; g.rows() * g.cols()];
        im2col(&g, &src, &mut whole);
        let arows = g.out.0 * g.out.1;
        // Gather in ragged chunks and compare column blocks.
        for step in [1usize, 3, 7, arows] {
            let mut ar0 = 0;
            while ar0 < arows {
                let ar1 = (ar0 + step).min(arows);
                let cols = (ar1 - ar0) * g.out.2;
                let mut part = vec![f64::NAN; g.rows() * cols];
                im2col_range(&g, &src, &mut part, ar0, ar1);
                for r in 0..g.rows() {
                    assert_eq!(
                        &part[r * cols..(r + 1) * cols],
                        &whole[r * g.cols() + ar0 * g.out.2..r * g.cols() + ar1 * g.out.2],
                        "step {step} ar {ar0}..{ar1} row {r}"
                    );
                }
                ar0 = ar1;
            }
        }
        // Scatter in chunks and compare against the whole scatter.
        let cmat: Vec<f64> = (0..g.rows() * g.cols()).map(|i| (i as f64).cos()).collect();
        let mut whole_dst = vec![0.0; g.c * g.vol()];
        col2im_accumulate(&g, &cmat, &mut whole_dst);
        let mut chunk_dst = vec![0.0; g.c * g.vol()];
        for (ar0, ar1) in [(0usize, 2usize), (2, 9), (9, arows)] {
            let cols = (ar1 - ar0) * g.out.2;
            let mut part = vec![0.0; g.rows() * cols];
            for r in 0..g.rows() {
                part[r * cols..(r + 1) * cols].copy_from_slice(
                    &cmat[r * g.cols() + ar0 * g.out.2..r * g.cols() + ar1 * g.out.2],
                );
            }
            col2im_range_accumulate(&g, &part, &mut chunk_dst, ar0, ar1);
        }
        for i in 0..whole_dst.len() {
            assert!((whole_dst[i] - chunk_dst[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn anchor_chunks_cover_all_rows() {
        let g = ConvGeom {
            c: 16,
            dims: (64, 64, 64),
            kernel: (3, 3, 3),
            stride: (1, 1, 1),
            padding: (1, 1, 1),
            out: (64, 64, 64),
        };
        let chunks: Vec<_> = anchor_chunks(&g).collect();
        assert!(chunks.len() > 1, "64³ must chunk");
        assert_eq!(chunks.first().unwrap().0, 0);
        assert_eq!(chunks.last().unwrap().1, g.out.0 * g.out.1);
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks must tile contiguously");
        }
        for &(a, b) in &chunks {
            assert!(b > a && g.rows() * (b - a) * g.out.2 <= 2 * CHUNK_ELEMS);
        }
    }

    #[test]
    fn scratch_clone_is_empty() {
        let s = Scratch {
            col: vec![1.0; 8],
            col2: vec![2.0; 8],
            tmp: vec![4.0; 8],
            ctmp: vec![5.0; 8],
            cached: vec![3.0; 8],
            cached_valid: true,
        };
        let c = s.clone();
        assert!(c.col.is_empty() && c.col2.is_empty() && c.cached.is_empty());
        assert!(!c.cached_valid);
    }
}
