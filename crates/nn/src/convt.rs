//! Transpose (fractionally-strided) 3D convolution.

use crate::layer::{Dims5, Layer, Triple};
use crate::lowering::{
    anchor_chunks, bias_grad, col2im_range_accumulate, im2col_range, ConvBackend, ConvGeom, Scratch,
};
use crate::param::Param;
use crate::util::SendPtr;
use crate::workspace::Workspace;
use mgd_tensor::matmul::{gemm, gemm_prepacked, pack_a};
use mgd_tensor::par::maybe_par_for;
use mgd_tensor::{Element, GemmElement, Tensor};
use rand::Rng;

/// A 3D transpose convolution — the upsampling path of the U-Net decoder.
///
/// Weight layout `[in_c, out_c, kd, kh, kw]` (PyTorch convention). The
/// standard factor-2 upsampler of the paper's decoder uses `k = s = 2`,
/// `p = 0`, which exactly doubles each (pooled) axis.
///
/// A transpose convolution is the adjoint of a convolution with the same
/// kernel/stride/padding, so under [`ConvBackend::Gemm`] (the default) all
/// passes lower onto the *same* im2col/col2im + GEMM machinery as
/// [`crate::conv::Conv3d`], with the patch geometry living on this layer's
/// **output** grid: `Y = col2im(Vᵀ·X) + b`, `dX = V·im2col(dY)`,
/// `dV += X·im2col(dY)ᵀ`.
#[derive(Clone, Debug)]
pub struct ConvTranspose3d<E: Element = f64> {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel extents (kd, kh, kw).
    pub kernel: Triple,
    /// Strides (sd, sh, sw).
    pub stride: Triple,
    /// Padding (pd, ph, pw) — reduces the output extent like conv padding
    /// grows it.
    pub padding: Triple,
    /// Filter weights.
    pub weight: Param<E>,
    /// Per-output-channel bias.
    pub bias: Param<E>,
    /// Kernel implementation to run.
    pub backend: ConvBackend,
    /// Cached training activation — training is `f64`-only, so this stays
    /// concrete (always empty in non-`f64` instantiations).
    cache_x: Option<Tensor>,
    scratch: Scratch<E>,
}

impl ConvTranspose3d {
    /// Fully configured constructor with Kaiming initialization.
    pub fn new<R: Rng>(
        in_c: usize,
        out_c: usize,
        kernel: Triple,
        stride: Triple,
        padding: Triple,
        rng: &mut R,
    ) -> Self {
        let (kd, kh, kw) = kernel;
        let fan_in = in_c * kd * kh * kw;
        ConvTranspose3d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            weight: Param::kaiming([in_c, out_c, kd, kh, kw], fan_in, rng),
            bias: Param::zeros([out_c]),
            backend: ConvBackend::default(),
            cache_x: None,
            scratch: Scratch::default(),
        }
    }

    /// The factor-2 upsampler (`k = s = 2`); `two_d` keeps depth unscaled.
    pub fn up2<R: Rng>(in_c: usize, out_c: usize, two_d: bool, rng: &mut R) -> Self {
        let (k, s) = if two_d {
            ((1, 2, 2), (1, 2, 2))
        } else {
            ((2, 2, 2), (2, 2, 2))
        };
        ConvTranspose3d::new(in_c, out_c, k, s, (0, 0, 0), rng)
    }
}

impl<E: Element> ConvTranspose3d<E> {
    /// Selects the kernel implementation (builder-style).
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Output spatial dims: `o = (i-1)*s - 2p + k`.
    pub fn out_dims(&self, din: &Dims5) -> Dims5 {
        let o = |i: usize, k: usize, s: usize, p: usize| {
            let full = (i - 1) * s + k;
            assert!(full >= 2 * p, "padding too large");
            full - 2 * p
        };
        Dims5 {
            n: din.n,
            c: self.out_c,
            d: o(din.d, self.kernel.0, self.stride.0, self.padding.0),
            h: o(din.h, self.kernel.1, self.stride.1, self.padding.1),
            w: o(din.w, self.kernel.2, self.stride.2, self.padding.2),
        }
    }

    /// Lowering geometry over the *output* grid of one sample (the adjoint
    /// of a convolution gathering from that grid, anchored at this layer's
    /// input positions).
    fn geom(&self, din: &Dims5, dout: &Dims5) -> ConvGeom {
        ConvGeom {
            c: self.out_c,
            dims: (dout.d, dout.h, dout.w),
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            out: (din.d, din.h, din.w),
        }
    }

    /// Converts the layer weights to another element type (through `f64`);
    /// the copy starts with empty scratch and no cached activation.
    pub fn cast_as<T: Element>(&self) -> ConvTranspose3d<T> {
        ConvTranspose3d {
            in_c: self.in_c,
            out_c: self.out_c,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            weight: self.weight.cast_as(),
            bias: self.bias.cast_as(),
            backend: self.backend,
            cache_x: None,
            scratch: Scratch::default(),
        }
    }

    /// Direct (scatter-loop) forward — the reference kernel, generic over
    /// the element type (identical operation order for every `E`).
    fn forward_direct(&self, x: &Tensor<E>, din: &Dims5, dout: &Dims5) -> Tensor<E> {
        let mut y: Tensor<E> = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let (kd, kh, kw) = self.kernel;
        let (sd, sh, sw) = self.stride;
        let (pd, ph, pw) = self.padding;
        let xs = x.as_slice();
        let ws = self.weight.data.as_slice();
        let bs = self.bias.data.as_slice();
        let out_block = dout.vol();
        let ptr = SendPtr(y.as_mut_slice().as_mut_ptr());
        maybe_par_for(
            dout.n * dout.c,
            out_block * self.in_c * kd * kh * kw,
            |nc| {
                let n = nc / dout.c;
                let oc = nc % dout.c;
                // SAFETY: each (n, oc) task owns a disjoint output block.
                let yblock = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(nc * out_block), out_block)
                };
                let b = bs[oc];
                let mut oi = 0usize;
                for od in 0..dout.d {
                    for oh in 0..dout.h {
                        for ow in 0..dout.w {
                            let mut acc = b;
                            contributions(od, sd, pd, kd, din.d, |id, kdi| {
                                contributions(oh, sh, ph, kh, din.h, |ih, khi| {
                                    contributions(ow, sw, pw, kw, din.w, |iw, kwi| {
                                        for ic in 0..self.in_c {
                                            let xv = xs[(n * self.in_c + ic) * din.vol()
                                                + (id * din.h + ih) * din.w
                                                + iw];
                                            let wv =
                                                ws[((ic * self.out_c + oc) * kd + kdi) * kh * kw
                                                    + khi * kw
                                                    + kwi];
                                            acc += xv * wv;
                                        }
                                    });
                                });
                            });
                            yblock[oi] = acc;
                            oi += 1;
                        }
                    }
                }
            },
        );
        y
    }
}

impl<E: GemmElement> ConvTranspose3d<E> {
    /// Shared-state inference forward: bitwise identical to
    /// `forward(x, false)` at the default `f64` element, but `&self` —
    /// transient buffers live in the caller's [`Workspace`] so shared
    /// weights serve concurrent callers.
    pub fn infer(&self, x: &Tensor<E>, ws: &mut Workspace<E>) -> Tensor<E> {
        let din = Dims5::of(x);
        assert_eq!(din.c, self.in_c, "channel mismatch");
        let dout = self.out_dims(&din);
        if self.backend == ConvBackend::Direct {
            return self.forward_direct(x, &din, &dout);
        }
        let geom = self.geom(&din, &dout);
        let (kdim, p) = (geom.rows(), geom.cols());
        let ow = din.w;
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let pa = pack_a(self.weight.data.as_slice(), kdim, self.in_c, true);
        let xs = x.as_slice();
        let bs = self.bias.data.as_slice();
        let outvol = geom.vol();
        let ys = y.as_mut_slice();
        let Workspace { col, tmp, .. } = ws;
        for ni in 0..din.n {
            let xslab = &xs[ni * self.in_c * p..][..self.in_c * p];
            let yslab = &mut ys[ni * self.out_c * outvol..][..self.out_c * outvol];
            for (oc, row) in yslab.chunks_exact_mut(outvol).enumerate() {
                row.fill(bs[oc]);
            }
            for (ar0, ar1) in anchor_chunks(&geom) {
                let cc = (ar1 - ar0) * ow;
                tmp.resize(self.in_c * cc, E::ZERO);
                for ic in 0..self.in_c {
                    tmp[ic * cc..(ic + 1) * cc]
                        .copy_from_slice(&xslab[ic * p + ar0 * ow..ic * p + ar1 * ow]);
                }
                col.resize(kdim * cc, E::ZERO);
                gemm_prepacked(&pa, tmp, false, col, cc, false);
                col2im_range_accumulate(&geom, col, yslab, ar0, ar1);
            }
        }
        y
    }
}

/// Iterates the (input-pos, tap) pairs contributing to output position `o`:
/// `i*s + k - p == o` with `0 ≤ i < in_extent`, `0 ≤ k < ksize`.
#[inline]
fn contributions(
    o: usize,
    s: usize,
    p: usize,
    ksize: usize,
    in_extent: usize,
    mut f: impl FnMut(usize, usize),
) {
    let target = o + p;
    // k = target - i*s; need 0 <= k < ksize.
    let i_min = (target + 1).saturating_sub(ksize).div_ceil(s);
    let i_max = (target / s).min(in_extent.saturating_sub(1));
    let mut i = i_min;
    while i <= i_max {
        let k = target - i * s;
        if k < ksize {
            f(i, k);
        }
        i += 1;
    }
}

impl ConvTranspose3d {
    /// GEMM forward: per sample, `Y_n = col2im(Vᵀ · X_n) + b`, sharing the
    /// packed `Vᵀ` panels across the batch and streaming cache-resident
    /// patch chunks at megavoxel grids.
    fn forward_gemm(&mut self, x: &Tensor, din: &Dims5, dout: &Dims5) -> Tensor {
        let geom = self.geom(din, dout);
        let (kdim, p) = (geom.rows(), geom.cols());
        let ow = din.w;
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        // The [in_c, out_c, kd, kh, kw] weight is the in_c × kdim matrix
        // row-major; its transpose is the kdim × in_c left operand.
        let pa = pack_a(self.weight.data.as_slice(), kdim, self.in_c, true);
        let xs = x.as_slice();
        let bs = self.bias.data.as_slice();
        let outvol = geom.vol();
        let ys = y.as_mut_slice();
        let Scratch { col, tmp, .. } = &mut self.scratch;
        for ni in 0..din.n {
            let xslab = &xs[ni * self.in_c * p..][..self.in_c * p];
            let yslab = &mut ys[ni * self.out_c * outvol..][..self.out_c * outvol];
            for (oc, row) in yslab.chunks_exact_mut(outvol).enumerate() {
                row.fill(bs[oc]);
            }
            for (ar0, ar1) in anchor_chunks(&geom) {
                let cc = (ar1 - ar0) * ow;
                // Contiguous copy of this chunk's input columns (rows of
                // X_n are strided by the full position count).
                tmp.resize(self.in_c * cc, 0.0);
                for ic in 0..self.in_c {
                    tmp[ic * cc..(ic + 1) * cc]
                        .copy_from_slice(&xslab[ic * p + ar0 * ow..ic * p + ar1 * ow]);
                }
                col.resize(kdim * cc, 0.0);
                gemm_prepacked(&pa, tmp, false, col, cc, false);
                col2im_range_accumulate(&geom, col, yslab, ar0, ar1);
            }
        }
        y
    }

    /// GEMM backward: `dX_n = V · im2col(dY_n)` and
    /// `dV += X_n · im2col(dY_n)ᵀ`, reusing each chunk's gathered
    /// gradient-patch matrix for both products.
    fn backward_gemm(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        din: &Dims5,
        dout: &Dims5,
    ) -> Tensor {
        let geom = self.geom(din, dout);
        let (kdim, p) = (geom.rows(), geom.cols());
        let ow = din.w;
        let g = grad_out.as_slice();
        let xs = x.as_slice();
        let outvol = geom.vol();
        let pa = pack_a(self.weight.data.as_slice(), self.in_c, kdim, false);
        let gw = self.weight.grad.as_mut_slice();
        let mut gx = Tensor::zeros([din.n, din.c, din.d, din.h, din.w]);
        let gxs = gx.as_mut_slice();
        let Scratch { col, tmp, ctmp, .. } = &mut self.scratch;
        for ni in 0..din.n {
            let gslab = &g[ni * self.out_c * outvol..][..self.out_c * outvol];
            let xslab = &xs[ni * self.in_c * p..][..self.in_c * p];
            let gxslab = &mut gxs[ni * self.in_c * p..][..self.in_c * p];
            for (ar0, ar1) in anchor_chunks(&geom) {
                let cc = (ar1 - ar0) * ow;
                col.resize(kdim * cc, 0.0);
                im2col_range(&geom, gslab, col, ar0, ar1);
                // Data gradient chunk, scattered back into the strided rows
                // of dX_n.
                ctmp.resize(self.in_c * cc, 0.0);
                gemm_prepacked(&pa, col, false, ctmp, cc, false);
                for ic in 0..self.in_c {
                    gxslab[ic * p + ar0 * ow..ic * p + ar1 * ow]
                        .copy_from_slice(&ctmp[ic * cc..(ic + 1) * cc]);
                }
                // Weight gradient over this chunk's input columns.
                tmp.resize(self.in_c * cc, 0.0);
                for ic in 0..self.in_c {
                    tmp[ic * cc..(ic + 1) * cc]
                        .copy_from_slice(&xslab[ic * p + ar0 * ow..ic * p + ar1 * ow]);
                }
                gemm(self.in_c, kdim, cc, tmp, false, col, true, gw, true);
            }
        }
        gx
    }

    /// Accumulates the per-channel bias gradient (shared lowering helper).
    fn bias_grad(&mut self, grad_out: &Tensor, dout: &Dims5) {
        bias_grad(
            grad_out.as_slice(),
            dout.n,
            dout.c,
            dout.vol(),
            self.bias.grad.as_mut_slice(),
        );
    }

    /// Direct (gather-loop) backward — the reference kernels for the input
    /// and weight gradients.
    fn backward_direct(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        din: &Dims5,
        dout: &Dims5,
    ) -> Tensor {
        let (kd, kh, kw) = self.kernel;
        let (sd, sh, sw) = self.stride;
        let (pd, ph, pw) = self.padding;
        let g = grad_out.as_slice();
        let xs = x.as_slice();

        // Input gradient: gx[n,ic,i] = Σ_{oc,k} g[n,oc,i*s+k-p] w[ic,oc,k]
        // — a *forward-conv* access pattern, parallel over (n, ic).
        let mut gx: Tensor = Tensor::zeros([din.n, din.c, din.d, din.h, din.w]);
        {
            let ws = self.weight.data.as_slice();
            let in_block = din.vol();
            let ptr = SendPtr(gx.as_mut_slice().as_mut_ptr());
            maybe_par_for(din.n * din.c, in_block * self.out_c * kd * kh * kw, |nc| {
                let n = nc / din.c;
                let ic = nc % din.c;
                // SAFETY: each (n, ic) task owns a disjoint block.
                let gxb = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(nc * in_block), in_block)
                };
                let mut ii = 0usize;
                for id in 0..din.d {
                    for ih in 0..din.h {
                        for iw in 0..din.w {
                            let mut acc = 0.0;
                            for kdi in 0..kd {
                                let od = id * sd + kdi;
                                if od < pd || od - pd >= dout.d {
                                    continue;
                                }
                                for khi in 0..kh {
                                    let oh = ih * sh + khi;
                                    if oh < ph || oh - ph >= dout.h {
                                        continue;
                                    }
                                    for kwi in 0..kw {
                                        let ow = iw * sw + kwi;
                                        if ow < pw || ow - pw >= dout.w {
                                            continue;
                                        }
                                        for oc in 0..self.out_c {
                                            let gv = g[(n * dout.c + oc) * dout.vol()
                                                + ((od - pd) * dout.h + (oh - ph)) * dout.w
                                                + (ow - pw)];
                                            let wv =
                                                ws[((ic * self.out_c + oc) * kd + kdi) * kh * kw
                                                    + khi * kw
                                                    + kwi];
                                            acc += gv * wv;
                                        }
                                    }
                                }
                            }
                            gxb[ii] = acc;
                            ii += 1;
                        }
                    }
                }
            });
        }

        // Weight gradient: gw[ic,oc,k] = Σ_{n,i} x[n,ic,i] g[n,oc,i*s+k-p];
        // parallel over ic (each owns a disjoint gw block).
        {
            let kvol = self.out_c * kd * kh * kw;
            let ptr = SendPtr(self.weight.grad.as_mut_slice().as_mut_ptr());
            maybe_par_for(self.in_c, din.n * din.vol() * kvol, |ic| {
                // SAFETY: each ic task owns a disjoint weight-grad block.
                let gw = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(ic * kvol), kvol) };
                for n in 0..din.n {
                    let xbase = (n * self.in_c + ic) * din.vol();
                    let mut ii = 0usize;
                    for id in 0..din.d {
                        for ih in 0..din.h {
                            for iw in 0..din.w {
                                let xv = xs[xbase + ii];
                                ii += 1;
                                if xv == 0.0 {
                                    continue;
                                }
                                for kdi in 0..kd {
                                    let od = id * sd + kdi;
                                    if od < pd || od - pd >= dout.d {
                                        continue;
                                    }
                                    for khi in 0..kh {
                                        let oh = ih * sh + khi;
                                        if oh < ph || oh - ph >= dout.h {
                                            continue;
                                        }
                                        for kwi in 0..kw {
                                            let ow = iw * sw + kwi;
                                            if ow < pw || ow - pw >= dout.w {
                                                continue;
                                            }
                                            for oc in 0..self.out_c {
                                                let gv = g[(n * dout.c + oc) * dout.vol()
                                                    + ((od - pd) * dout.h + (oh - ph)) * dout.w
                                                    + (ow - pw)];
                                                gw[(oc * kd + kdi) * kh * kw + khi * kw + kwi] +=
                                                    xv * gv;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
        gx
    }
}

impl Layer for ConvTranspose3d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let din = Dims5::of(x);
        assert_eq!(din.c, self.in_c, "channel mismatch");
        let dout = self.out_dims(&din);
        let y = match self.backend {
            ConvBackend::Direct => self.forward_direct(x, &din, &dout),
            ConvBackend::Gemm => self.forward_gemm(x, &din, &dout),
        };
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // `take` instead of clone: backward consumes the cached activation,
        // so the hot path never copies a full input tensor.
        let x = self.cache_x.take().expect("backward before forward");
        let din = Dims5::of(&x);
        let dout = self.out_dims(&din);
        assert_eq!(grad_out.dims(), &[dout.n, dout.c, dout.d, dout.h, dout.w]);
        self.bias_grad(grad_out, &dout);
        match self.backend {
            ConvBackend::Direct => self.backward_direct(&x, grad_out, &din, &dout),
            ConvBackend::Gemm => self.backward_gemm(&x, grad_out, &din, &dout),
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        format!(
            "ConvTranspose3d({}→{}, k{:?}, s{:?}, p{:?})",
            self.in_c, self.out_c, self.kernel, self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradient, FD_EPS, FD_TOL};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn up2_doubles_spatial_dims() {
        let mut t = ConvTranspose3d::up2(4, 2, false, &mut rng());
        let y = t.forward(&Tensor::zeros([1, 4, 2, 3, 5]), false);
        assert_eq!(y.dims(), &[1, 2, 4, 6, 10]);
    }

    #[test]
    fn up2_2d_keeps_depth() {
        let mut t = ConvTranspose3d::up2(2, 1, true, &mut rng());
        let y = t.forward(&Tensor::zeros([1, 2, 1, 4, 4]), false);
        assert_eq!(y.dims(), &[1, 1, 1, 8, 8]);
    }

    #[test]
    fn known_upsample_values() {
        // 1 input channel, k=s=2 along width only: each input pixel expands
        // to [x*w0, x*w1].
        let mut t = ConvTranspose3d::new(1, 1, (1, 1, 2), (1, 1, 2), (0, 0, 0), &mut rng());
        t.weight.data = Tensor::from_vec([1, 1, 1, 1, 2], vec![2.0, 3.0]);
        t.bias.data = Tensor::from_vec([1], vec![0.0]);
        let x = Tensor::from_vec([1, 1, 1, 1, 2], vec![1.0, 10.0]);
        let y = t.forward(&x, false);
        assert_eq!(y.as_slice(), &[2.0, 3.0, 20.0, 30.0]);
    }

    #[test]
    fn transpose_is_adjoint_of_conv() {
        // For zero bias and matching configs, <ConvT(x), y> == <x, Conv(y)>
        // where Conv uses the flipped weight layout. We verify the adjoint
        // property numerically via gradients instead: Conv3d.backward's
        // input-grad is ConvT's forward with shared weights (up to layout),
        // so a direct inner-product check keeps the invariant honest.
        let mut t = ConvTranspose3d::new(2, 3, (1, 2, 2), (1, 2, 2), (0, 0, 0), &mut rng());
        for b in t.bias.data.as_mut_slice() {
            *b = 0.0;
        }
        let mut r = rng();
        let x = Tensor::rand_uniform([1, 2, 1, 3, 3], -1.0, 1.0, &mut r);
        let y = t.forward(&x, true);
        // Probe: <y, w> gradient w.r.t. x must equal ConvT^T applied to w.
        let w = Tensor::rand_uniform(y.dims().to_vec(), -1.0, 1.0, &mut r);
        let gx = t.backward(&w);
        // Inner-product identity: <ConvT(x), w> == <x, ConvT^T(w)> (+ bias=0)
        let lhs = y.dot(&w);
        let rhs = x.dot(&gx);
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn gradcheck_up2() {
        let t = ConvTranspose3d::up2(2, 2, true, &mut rng());
        check_layer_gradient(Box::new(t), &[1, 2, 1, 3, 3], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_3d_k3_s1() {
        let t = ConvTranspose3d::new(1, 2, (3, 3, 3), (1, 1, 1), (1, 1, 1), &mut rng());
        check_layer_gradient(Box::new(t), &[1, 1, 3, 3, 3], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_strided_padded() {
        let t = ConvTranspose3d::new(2, 1, (1, 3, 3), (1, 2, 2), (0, 1, 1), &mut rng());
        check_layer_gradient(Box::new(t), &[1, 2, 1, 3, 3], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_gemm_backend_explicit() {
        let t = ConvTranspose3d::up2(2, 2, false, &mut rng()).with_backend(ConvBackend::Gemm);
        check_layer_gradient(Box::new(t), &[1, 2, 3, 3, 3], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_direct_backend_explicit() {
        let t = ConvTranspose3d::up2(2, 2, false, &mut rng()).with_backend(ConvBackend::Direct);
        check_layer_gradient(Box::new(t), &[1, 2, 3, 3, 3], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn infer_matches_forward_bitwise_both_backends() {
        let mut r = rng();
        for backend in [ConvBackend::Gemm, ConvBackend::Direct] {
            let mut t = ConvTranspose3d::up2(3, 2, false, &mut r).with_backend(backend);
            let x = Tensor::rand_uniform([2, 3, 5, 6, 7], -1.0, 1.0, &mut r);
            let y = t.forward(&x, false);
            let mut ws = crate::workspace::Workspace::new();
            let yi = t.infer(&x, &mut ws);
            assert!(y
                .as_slice()
                .iter()
                .zip(yi.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn gemm_chunked_path_matches_direct_at_64cubed() {
        // The up2 decoder shape at 64³ output exceeds the chunk budget, so
        // this exercises the streamed forward and backward GEMM paths.
        let mut r = rng();
        let mut direct =
            ConvTranspose3d::up2(4, 2, false, &mut r).with_backend(ConvBackend::Direct);
        let mut gemm = direct.clone().with_backend(ConvBackend::Gemm);
        let x = Tensor::rand_uniform([1, 4, 48, 48, 48], -1.0, 1.0, &mut r);
        let yd = direct.forward(&x, true);
        let yg = gemm.forward(&x, true);
        assert_eq!(yd.dims(), &[1, 2, 96, 96, 96]);
        assert!(yd.rel_l2_error(&yg) < 1e-12, "{}", yd.rel_l2_error(&yg));
        let g = Tensor::rand_uniform(yd.dims().to_vec(), -1.0, 1.0, &mut r);
        let gxd = direct.backward(&g);
        let gxg = gemm.backward(&g);
        assert!(gxd.rel_l2_error(&gxg) < 1e-12, "{}", gxd.rel_l2_error(&gxg));
        assert!(direct.weight.grad.rel_l2_error(&gemm.weight.grad) < 1e-12);
        assert!(direct.bias.grad.rel_l2_error(&gemm.bias.grad) < 1e-12);
    }
}
