//! Per-call inference scratch: the [`Workspace`] behind the `&self`
//! serving path.
//!
//! The training-side [`crate::layer::Layer::forward`] owns its scratch
//! buffers (patch matrices, GEMM chunk outputs) inside each layer, which is
//! why it takes `&mut self`. That is the wrong shape for serving: a model
//! published behind an `Arc` must answer `predict` from any number of
//! threads at once, so the transient buffers have to live with the *call*,
//! not with the shared weights. `Workspace` is that per-call home — every
//! concurrent reader owns one (cheaply default-constructed, grown on
//! demand, reusable across requests on the same thread) and threads it
//! through [`crate::Conv3d::infer`] / [`crate::ConvTranspose3d::infer`] /
//! [`crate::UNet::infer`].
//!
//! Buffers are shared across *layers* within a call: each layer resizes
//! them to its chunk geometry before use, so a whole U-Net forward touches
//! one pair of allocations in steady state.
//!
//! ```
//! use mgd_nn::{UNet, UNetConfig, Workspace};
//! use mgd_tensor::Tensor;
//!
//! let net = UNet::new(UNetConfig {
//!     depth: 1,
//!     base_filters: 2,
//!     two_d: true,
//!     ..Default::default()
//! });
//! let mut ws = Workspace::new();
//! // `net` is shared (`&net`) — only the workspace is mutable.
//! let y = net.infer(&Tensor::zeros([1, 1, 1, 4, 4]), &mut ws);
//! assert_eq!(y.dims(), &[1, 1, 1, 4, 4]);
//! ```

use mgd_tensor::Element;

/// Reusable scratch buffers for the lock-free `&self` inference path.
///
/// One `Workspace` belongs to one call chain at a time (it is `&mut`
/// through the whole forward); creating one is free — buffers start empty
/// and grow to the largest chunk the network needs, then stay warm for the
/// next request served by the same thread. The element type matches the
/// model it serves: `Workspace` (= `Workspace<f64>`) for the default
/// double-precision path, `Workspace<f32>` for the single-precision
/// serving fast path (half the scratch bytes per chunk).
#[derive(Debug, Default)]
pub struct Workspace<E: Element = f64> {
    /// Patch-matrix chunk (im2col gather target / col2im source).
    pub(crate) col: Vec<E>,
    /// GEMM output chunk before it is scattered into the strided result.
    pub(crate) ctmp: Vec<E>,
    /// Contiguous copy of a strided row-chunk operand.
    pub(crate) tmp: Vec<E>,
}

impl<E: Element> Workspace<E> {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Total scratch elements currently held (capacity diagnostics).
    pub fn len(&self) -> usize {
        self.col.len() + self.ctmp.len() + self.tmp.len()
    }

    /// Whether no scratch has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all held buffers (e.g. after serving an unusually large
    /// request, to return the memory).
    pub fn reset(&mut self) {
        self.col = Vec::new();
        self.ctmp = Vec::new();
        self.tmp = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_resets() {
        let mut ws = Workspace::new();
        assert!(ws.is_empty());
        ws.col.resize(16, 0.0);
        assert_eq!(ws.len(), 16);
        ws.reset();
        assert!(ws.is_empty());
    }
}
