//! Max-pooling with cached argmax indices.

use crate::layer::{Dims5, Layer, Triple};
use mgd_tensor::{Element, Tensor};

/// Max pooling with window == stride (the factor-of-two downsampling of the
/// paper's fully convolutional constraint §3.1.2; 2D problems pool with a
/// unit depth window `(1, 2, 2)`).
#[derive(Clone, Debug)]
pub struct MaxPool3d {
    /// Pool window per axis (also the stride).
    pub window: Triple,
    cache: Option<PoolCache>,
}

#[derive(Clone, Debug)]
struct PoolCache {
    in_dims: Dims5,
    /// Flat input index of each output's max element.
    argmax: Vec<usize>,
    out_dims: Dims5,
}

impl MaxPool3d {
    /// Creates a pool layer with the given window.
    pub fn new(window: Triple) -> Self {
        assert!(window.0 >= 1 && window.1 >= 1 && window.2 >= 1);
        MaxPool3d {
            window,
            cache: None,
        }
    }

    /// The standard factor-2 spatial pool; `two_d` keeps depth unpooled.
    pub fn down2(two_d: bool) -> Self {
        MaxPool3d::new(if two_d { (1, 2, 2) } else { (2, 2, 2) })
    }

    /// Shared-state inference forward: the same window maxima as
    /// `forward(x, false)` (identical comparison order, so bitwise
    /// identical values) without the argmax bookkeeping — `&self`, safe to
    /// call from concurrent readers of a shared layer.
    pub fn infer<E: Element>(&self, x: &Tensor<E>) -> Tensor<E> {
        let din = Dims5::of(x);
        let (wd, wh, ww) = self.window;
        assert!(
            din.d.is_multiple_of(wd) && din.h.is_multiple_of(wh) && din.w.is_multiple_of(ww),
            "input {:?} not divisible by pool window {:?}",
            x.dims(),
            self.window
        );
        let dout = Dims5 {
            n: din.n,
            c: din.c,
            d: din.d / wd,
            h: din.h / wh,
            w: din.w / ww,
        };
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        let mut oi = 0usize;
        for n in 0..dout.n {
            for c in 0..dout.c {
                for od in 0..dout.d {
                    for oh in 0..dout.h {
                        for ow in 0..dout.w {
                            let mut best = E::from_f64(f64::NEG_INFINITY);
                            for kd in 0..wd {
                                for kh in 0..wh {
                                    for kw in 0..ww {
                                        let ii =
                                            din.at(n, c, od * wd + kd, oh * wh + kh, ow * ww + kw);
                                        if xs[ii] > best {
                                            best = xs[ii];
                                        }
                                    }
                                }
                            }
                            ys[oi] = best;
                            oi += 1;
                        }
                    }
                }
            }
        }
        y
    }
}

impl Layer for MaxPool3d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let din = Dims5::of(x);
        let (wd, wh, ww) = self.window;
        assert!(
            din.d.is_multiple_of(wd) && din.h.is_multiple_of(wh) && din.w.is_multiple_of(ww),
            "input {:?} not divisible by pool window {:?}",
            x.dims(),
            self.window
        );
        let dout = Dims5 {
            n: din.n,
            c: din.c,
            d: din.d / wd,
            h: din.h / wh,
            w: din.w / ww,
        };
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let mut argmax = vec![0usize; y.len()];
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        let mut oi = 0usize;
        for n in 0..dout.n {
            for c in 0..dout.c {
                for od in 0..dout.d {
                    for oh in 0..dout.h {
                        for ow in 0..dout.w {
                            let mut best = f64::NEG_INFINITY;
                            let mut best_i = 0usize;
                            for kd in 0..wd {
                                for kh in 0..wh {
                                    for kw in 0..ww {
                                        let ii =
                                            din.at(n, c, od * wd + kd, oh * wh + kh, ow * ww + kw);
                                        if xs[ii] > best {
                                            best = xs[ii];
                                            best_i = ii;
                                        }
                                    }
                                }
                            }
                            ys[oi] = best;
                            argmax[oi] = best_i;
                            oi += 1;
                        }
                    }
                }
            }
        }
        if train {
            self.cache = Some(PoolCache {
                in_dims: din,
                argmax,
                out_dims: dout,
            });
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let dout = cache.out_dims;
        assert_eq!(grad_out.dims(), &[dout.n, dout.c, dout.d, dout.h, dout.w]);
        let din = cache.in_dims;
        let mut gx = Tensor::zeros([din.n, din.c, din.d, din.h, din.w]);
        let g = grad_out.as_slice();
        let gxs = gx.as_mut_slice();
        for (oi, &ii) in cache.argmax.iter().enumerate() {
            gxs[ii] += g[oi];
        }
        gx
    }

    fn name(&self) -> String {
        format!("MaxPool3d{:?}", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradient, FD_EPS_FINE, FD_TOL_STAT};

    #[test]
    fn forward_picks_maxima() {
        let mut p = MaxPool3d::new((1, 2, 2));
        let x = Tensor::from_vec(
            [1, 1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 7.0, 4.0],
        );
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 1, 1, 2]);
        assert_eq!(y.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool3d::new((1, 2, 2));
        let x = Tensor::from_vec(
            [1, 1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 7.0, 4.0],
        );
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec([1, 1, 1, 1, 2], vec![10.0, 20.0]);
        let gx = p.backward(&g);
        assert_eq!(gx.as_slice(), &[0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 20.0, 0.0]);
    }

    #[test]
    fn pool_3d_window() {
        let mut p = MaxPool3d::down2(false);
        let x = Tensor::from_vec([1, 1, 2, 2, 2], (0..8).map(|i| i as f64).collect());
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 1, 1, 1]);
        assert_eq!(y.as_slice(), &[7.0]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_input_panics() {
        let mut p = MaxPool3d::new((2, 2, 2));
        let _ = p.forward(&Tensor::zeros([1, 1, 3, 4, 4]), true);
    }

    #[test]
    fn gradcheck() {
        // Random inputs rarely tie, so max-pool is differentiable a.e.
        let p = MaxPool3d::new((1, 2, 2));
        check_layer_gradient(Box::new(p), &[2, 2, 1, 4, 4], 0.0, FD_EPS_FINE, FD_TOL_STAT);
    }
}
