//! The MGDiffNet U-Net (paper §3.1.2 and §4.1).
//!
//! Fully convolutional: convolutions, factor-2 max-pool downsampling,
//! factor-2 transpose-convolution upsampling, skip connections by channel
//! concatenation, batch norm + LeakyReLU in every block, Sigmoid head.
//! Because no layer depends on the input resolution, one set of weights
//! serves every multigrid level — the property the whole training scheme is
//! built on. `depth` down/up stages with `base_filters · 2^i` channels
//! reproduce the paper's "starting filter size 16, doubled with depth".

use crate::act::{LeakyReLU, Sigmoid};
use crate::conv::Conv3d;
use crate::convt::ConvTranspose3d;
use crate::layer::{Dims5, Layer};
use crate::lowering::ConvBackend;
use crate::norm::BatchNorm;
use crate::param::Param;
use crate::pool::MaxPool3d;
use crate::workspace::Workspace;
use mgd_tensor::{Element, GemmElement, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct UNetConfig {
    /// Input channels (1: the coefficient field).
    pub in_channels: usize,
    /// Output channels (1: the solution field).
    pub out_channels: usize,
    /// Number of pool/upsample stages (paper: 3).
    pub depth: usize,
    /// Channels of the first encoder block (paper: 16).
    pub base_filters: usize,
    /// 2D mode: unit depth axis, `(1,k,k)` kernels, `(1,2,2)` pools.
    pub two_d: bool,
    /// LeakyReLU negative slope.
    pub leaky_slope: f64,
    /// Enable batch normalization (paper: yes).
    pub batch_norm: bool,
    /// Sigmoid on the head (paper: yes — predictions live in (0,1)).
    pub final_sigmoid: bool,
    /// Weight-init RNG seed (replicated across data-parallel workers so all
    /// replicas start identical).
    pub seed: u64,
    /// Convolution kernel implementation for every conv/transpose-conv
    /// layer (default [`ConvBackend::Gemm`]; `Direct` keeps the reference
    /// sliding-window loops for equivalence testing and bisection).
    #[serde(default)]
    pub conv_backend: ConvBackend,
}

impl Default for UNetConfig {
    fn default() -> Self {
        UNetConfig {
            in_channels: 1,
            out_channels: 1,
            depth: 3,
            base_filters: 16,
            two_d: false,
            leaky_slope: 0.01,
            batch_norm: true,
            final_sigmoid: true,
            seed: 0,
            conv_backend: ConvBackend::default(),
        }
    }
}

impl UNetConfig {
    /// The paper's 2D configuration.
    pub fn paper_2d() -> Self {
        UNetConfig {
            two_d: true,
            ..Default::default()
        }
    }

    /// The paper's 3D configuration.
    pub fn paper_3d() -> Self {
        UNetConfig::default()
    }

    /// Channel count of encoder level `i`.
    pub fn channels(&self, i: usize) -> usize {
        self.base_filters << i
    }
}

/// Conv → (BatchNorm) → LeakyReLU.
///
/// Generic over the inference element type; training always instantiates
/// the default `f64`.
#[derive(Clone, Debug)]
pub struct ConvBlock<E: Element = f64> {
    pub(crate) conv: Conv3d<E>,
    pub(crate) bn: Option<BatchNorm<E>>,
    pub(crate) act: LeakyReLU,
}

impl ConvBlock {
    fn new(in_c: usize, out_c: usize, cfg: &UNetConfig, rng: &mut StdRng) -> Self {
        let k = if cfg.two_d { (1, 3, 3) } else { (3, 3, 3) };
        ConvBlock {
            conv: Conv3d::same(in_c, out_c, k, rng).with_backend(cfg.conv_backend),
            bn: if cfg.batch_norm {
                Some(BatchNorm::new(out_c))
            } else {
                None
            },
            act: LeakyReLU::new(cfg.leaky_slope),
        }
    }
}

impl<E: Element> ConvBlock<E> {
    /// Converts every layer's weights to another element type (through
    /// `f64`); the copy carries no training state.
    pub fn cast_as<T: Element>(&self) -> ConvBlock<T> {
        ConvBlock {
            conv: self.conv.cast_as(),
            bn: self.bn.as_ref().map(|b| b.cast_as()),
            act: self.act.clone(),
        }
    }
}

impl<E: GemmElement> ConvBlock<E> {
    /// Shared-state inference forward through conv → (bn) → act, bitwise
    /// identical to `forward(x, false)` at the default `f64`.
    pub fn infer(&self, x: &Tensor<E>, ws: &mut Workspace<E>) -> Tensor<E> {
        let mut h = self.conv.infer(x, ws);
        if let Some(bn) = &self.bn {
            h = bn.infer(&h);
        }
        self.act.infer(&h)
    }

    /// Applies this block's post-conv stages (batch norm and LeakyReLU) to
    /// `h` in place: one fused memory walk, bitwise identical to
    /// `bn.infer` followed by `act.infer`, with zero allocations. The
    /// slab-serving path uses this so each block touches exactly one
    /// output tensor.
    pub fn finish_inplace(&self, h: &mut Tensor<E>) {
        match &self.bn {
            Some(bn) => bn.infer_leaky_inplace(h, self.act.alpha),
            None => self.act.infer_inplace(h),
        }
    }
}

impl Layer for ConvBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.conv.forward(x, train);
        if let Some(bn) = &mut self.bn {
            h = bn.forward(&h, train);
        }
        self.act.forward(&h, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = self.act.backward(grad_out);
        if let Some(bn) = &mut self.bn {
            g = bn.backward(&g);
        }
        self.conv.backward(&g)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv.params();
        if let Some(bn) = &mut self.bn {
            p.extend(bn.params());
        }
        p
    }

    fn buffers(&mut self) -> Vec<&mut Vec<f64>> {
        match &mut self.bn {
            Some(bn) => bn.buffers(),
            None => Vec::new(),
        }
    }

    fn name(&self) -> String {
        format!("ConvBlock[{}]", self.conv.name())
    }
}

/// Concatenates two NCDHW tensors along the channel axis.
pub fn concat_channels<E: Element>(a: &Tensor<E>, b: &Tensor<E>) -> Tensor<E> {
    let da = Dims5::of(a);
    let db = Dims5::of(b);
    assert_eq!(
        (da.n, da.d, da.h, da.w),
        (db.n, db.d, db.h, db.w),
        "spatial/batch mismatch"
    );
    let mut out: Tensor<E> = Tensor::zeros([da.n, da.c + db.c, da.d, da.h, da.w]);
    let vol = da.vol();
    let (asl, bsl, osl) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for n in 0..da.n {
        let o_base = n * (da.c + db.c) * vol;
        osl[o_base..o_base + da.c * vol]
            .copy_from_slice(&asl[n * da.c * vol..(n + 1) * da.c * vol]);
        osl[o_base + da.c * vol..o_base + (da.c + db.c) * vol]
            .copy_from_slice(&bsl[n * db.c * vol..(n + 1) * db.c * vol]);
    }
    out
}

/// Splits a channel-concatenated gradient back into its two halves.
pub fn split_channels<E: Element>(g: &Tensor<E>, c_first: usize) -> (Tensor<E>, Tensor<E>) {
    let d = Dims5::of(g);
    assert!(c_first < d.c);
    let c_second = d.c - c_first;
    let vol = d.vol();
    let mut a: Tensor<E> = Tensor::zeros([d.n, c_first, d.d, d.h, d.w]);
    let mut b: Tensor<E> = Tensor::zeros([d.n, c_second, d.d, d.h, d.w]);
    let gs = g.as_slice();
    for n in 0..d.n {
        let g_base = n * d.c * vol;
        a.as_mut_slice()[n * c_first * vol..(n + 1) * c_first * vol]
            .copy_from_slice(&gs[g_base..g_base + c_first * vol]);
        b.as_mut_slice()[n * c_second * vol..(n + 1) * c_second * vol]
            .copy_from_slice(&gs[g_base + c_first * vol..g_base + d.c * vol]);
    }
    (a, b)
}

/// Per-sample spatial volume (voxels) above which a batched [`UNet::infer`]
/// runs sample-by-sample instead of carrying the whole batch through every
/// layer. Batched activations are `n×` larger than per-sample ones, so above
/// ~16² per sample a batch-8 forward evicts its own working set between
/// layers and *loses* to request-at-a-time (ROADMAP item 3); chunking the
/// batch keeps every intermediate cache-resident. Per-sample values are
/// bitwise identical either way — every inference op treats batch samples
/// independently.
const BATCH_CHUNK_VOL: usize = 256;

/// The MGDiffNet U-Net.
///
/// Generic over the inference element type `E`: training, checkpointing and
/// the exclusive [`Layer`] surface always run at the default `f64` (master
/// weights), while [`UNet::to_f32`] derives a single-precision replica whose
/// [`UNet::infer`] path halves memory traffic on the serving fast path.
#[derive(Clone, Debug)]
pub struct UNet<E: Element = f64> {
    /// Architecture parameters.
    pub cfg: UNetConfig,
    pub(crate) enc: Vec<ConvBlock<E>>,
    pub(crate) pools: Vec<MaxPool3d>,
    pub(crate) bottleneck: ConvBlock<E>,
    /// `ups[i]` upsamples from level `i+1` channels to level `i`.
    pub(crate) ups: Vec<ConvTranspose3d<E>>,
    /// `merges[i]` fuses `[up_out ‖ skip]` (2·c_i channels) down to c_i.
    pub(crate) merges: Vec<ConvBlock<E>>,
    pub(crate) head: Conv3d<E>,
    pub(crate) sigmoid: Option<Sigmoid>,
}

impl UNet {
    /// Builds the network with deterministic Kaiming initialization.
    pub fn new(cfg: UNetConfig) -> Self {
        assert!(cfg.depth >= 1, "depth must be >= 1");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut enc = Vec::new();
        let mut pools = Vec::new();
        for i in 0..cfg.depth {
            let in_c = if i == 0 {
                cfg.in_channels
            } else {
                cfg.channels(i - 1)
            };
            enc.push(ConvBlock::new(in_c, cfg.channels(i), &cfg, &mut rng));
            pools.push(MaxPool3d::down2(cfg.two_d));
        }
        let bottleneck = ConvBlock::new(
            cfg.channels(cfg.depth - 1),
            cfg.channels(cfg.depth),
            &cfg,
            &mut rng,
        );
        let mut ups = Vec::new();
        let mut merges = Vec::new();
        for i in 0..cfg.depth {
            ups.push(
                ConvTranspose3d::up2(cfg.channels(i + 1), cfg.channels(i), cfg.two_d, &mut rng)
                    .with_backend(cfg.conv_backend),
            );
            merges.push(ConvBlock::new(
                2 * cfg.channels(i),
                cfg.channels(i),
                &cfg,
                &mut rng,
            ));
        }
        let head = Conv3d::new(
            cfg.channels(0),
            cfg.out_channels,
            (1, 1, 1),
            (1, 1, 1),
            (0, 0, 0),
            &mut rng,
        )
        .with_backend(cfg.conv_backend);
        let sigmoid = if cfg.final_sigmoid {
            Some(Sigmoid::new())
        } else {
            None
        };
        UNet {
            cfg,
            enc,
            pools,
            bottleneck,
            ups,
            merges,
            head,
            sigmoid,
        }
    }

    /// Single-precision serving replica: every weight converted to `f32`
    /// (one rounding from the `f64` masters), batch-norm running statistics
    /// kept in `f64` and folded per channel at inference. The replica
    /// carries no training state — it exists for [`UNet::infer`], where it
    /// halves weight and activation memory traffic.
    pub fn to_f32(&self) -> UNet<f32> {
        self.cast_as()
    }
}

impl<E: Element> UNet<E> {
    /// Converts every layer's weights to another element type (through
    /// `f64`). See [`UNet::to_f32`].
    pub fn cast_as<T: Element>(&self) -> UNet<T> {
        UNet {
            cfg: self.cfg,
            enc: self.enc.iter().map(|b| b.cast_as()).collect(),
            pools: self.pools.clone(),
            bottleneck: self.bottleneck.cast_as(),
            ups: self.ups.iter().map(|u| u.cast_as()).collect(),
            merges: self.merges.iter().map(|m| m.cast_as()).collect(),
            head: self.head.cast_as(),
            sigmoid: self.sigmoid.clone(),
        }
    }

    /// Validates that an input resolution survives `depth` poolings.
    pub fn check_input_dims(&self, dims: &Dims5) {
        let div = 1usize << self.cfg.depth;
        if !self.cfg.two_d {
            assert!(
                dims.d.is_multiple_of(div),
                "depth {} not divisible by {div}",
                dims.d
            );
        } else {
            assert!(dims.d == 1, "2D network expects unit depth axis");
        }
        assert!(
            dims.h.is_multiple_of(div),
            "height {} not divisible by {div}",
            dims.h
        );
        assert!(
            dims.w.is_multiple_of(div),
            "width {} not divisible by {div}",
            dims.w
        );
    }
}

impl<E: GemmElement> UNet<E> {
    /// Prepacks the GEMM weight panels of every stencil convolution
    /// (encoder, bottleneck, merge blocks, and the head) so subsequent
    /// `&self` inference calls reuse them instead of repacking per call
    /// — see [`Conv3d::prepack`](crate::conv::Conv3d::prepack). Call once
    /// on a serving snapshot; training invalidates the panels.
    pub fn prepack(&mut self) {
        for block in &mut self.enc {
            block.conv.prepack();
        }
        self.bottleneck.conv.prepack();
        for block in &mut self.merges {
            block.conv.prepack();
        }
        self.head.prepack();
    }

    /// Shared-state inference forward: the full U-Net traversal of
    /// [`Layer::forward`] with `train = false`, but `&self` — every layer's
    /// transient buffers live in the caller's [`Workspace`], so one network
    /// behind an `Arc` serves any number of concurrent callers with
    /// bitwise-identical results to the exclusive path (at the default
    /// `f64`).
    ///
    /// Batches above [`BATCH_CHUNK_VOL`] voxels per sample run
    /// sample-by-sample so intermediate activations stay cache-resident;
    /// per-sample outputs are bitwise identical to the all-at-once pass.
    pub fn infer(&self, x: &Tensor<E>, ws: &mut Workspace<E>) -> Tensor<E> {
        let din = Dims5::of(x);
        self.check_input_dims(&din);
        if din.n > 1 && din.vol() > BATCH_CHUNK_VOL {
            let in_vol = din.c * din.vol();
            let out_vol = self.cfg.out_channels * din.vol();
            let mut y: Tensor<E> =
                Tensor::zeros([din.n, self.cfg.out_channels, din.d, din.h, din.w]);
            let xs = x.as_slice();
            for ni in 0..din.n {
                let sample = Tensor::from_vec(
                    vec![1, din.c, din.d, din.h, din.w],
                    xs[ni * in_vol..(ni + 1) * in_vol].to_vec(),
                );
                let out = self.infer_one(&sample, ws);
                y.as_mut_slice()[ni * out_vol..(ni + 1) * out_vol].copy_from_slice(out.as_slice());
            }
            return y;
        }
        self.infer_one(x, ws)
    }

    /// One unchunked traversal (any batch size).
    fn infer_one(&self, x: &Tensor<E>, ws: &mut Workspace<E>) -> Tensor<E> {
        let depth = self.cfg.depth;
        let mut skips: Vec<Tensor<E>> = Vec::with_capacity(depth);
        let mut h = x.clone();
        for i in 0..depth {
            h = self.enc[i].infer(&h, ws);
            skips.push(h.clone());
            h = self.pools[i].infer(&h);
        }
        h = self.bottleneck.infer(&h, ws);
        for i in (0..depth).rev() {
            h = self.ups[i].infer(&h, ws);
            h = concat_channels(&h, &skips[i]);
            h = self.merges[i].infer(&h, ws);
        }
        h = self.head.infer(&h, ws);
        if let Some(s) = &self.sigmoid {
            h = s.infer(&h);
        }
        h
    }
}

impl UNet {
    /// Inference convenience (no caching).
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        self.forward(x, false)
    }

    /// Builds the depth+1 network of the paper's architectural-adaptation
    /// study (§4.1.2): the old bottleneck becomes the new deepest encoder
    /// block (its learned weights are kept); a fresh bottleneck, upsampler
    /// and merge block are inserted at the new deepest level with random
    /// weights ("one convolutional layer and two transpose convolutional
    /// layers ... initialized with random weights"); everything else is
    /// copied.
    pub fn deepened(&self) -> UNet {
        let mut cfg = self.cfg;
        cfg.depth += 1;
        cfg.seed = self.cfg.seed.wrapping_add(0x5EED);
        let mut new = UNet::new(cfg);
        for i in 0..self.cfg.depth {
            new.enc[i] = self.enc[i].clone();
            new.ups[i] = self.ups[i].clone();
            new.merges[i] = self.merges[i].clone();
        }
        // Old bottleneck: channels(depth-1) -> channels(depth) — exactly the
        // shape of the new deepest encoder block.
        new.enc[self.cfg.depth] = self.bottleneck.clone();
        new.head = self.head.clone();
        new
    }

    /// Total learnable scalar count.
    pub fn num_parameters(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

impl Layer for UNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.check_input_dims(&Dims5::of(x));
        let depth = self.cfg.depth;
        let mut skips: Vec<Tensor> = Vec::with_capacity(depth);
        let mut h = x.clone();
        for i in 0..depth {
            h = self.enc[i].forward(&h, train);
            skips.push(h.clone());
            h = self.pools[i].forward(&h, train);
        }
        h = self.bottleneck.forward(&h, train);
        for i in (0..depth).rev() {
            h = self.ups[i].forward(&h, train);
            h = concat_channels(&h, &skips[i]);
            h = self.merges[i].forward(&h, train);
        }
        h = self.head.forward(&h, train);
        if let Some(s) = &mut self.sigmoid {
            h = s.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let depth = self.cfg.depth;
        let mut g = grad_out.clone();
        if let Some(s) = &mut self.sigmoid {
            g = s.backward(&g);
        }
        g = self.head.backward(&g);
        let mut skip_grads: Vec<Option<Tensor>> = vec![None; depth];
        for i in 0..depth {
            g = self.merges[i].backward(&g);
            let (g_up, g_skip) = split_channels(&g, self.cfg.channels(i));
            skip_grads[i] = Some(g_skip);
            g = self.ups[i].backward(&g_up);
        }
        g = self.bottleneck.backward(&g);
        for i in (0..depth).rev() {
            g = self.pools[i].backward(&g);
            g.add_assign(skip_grads[i].as_ref().expect("skip grad missing"));
            g = self.enc[i].backward(&g);
        }
        g
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for b in &mut self.enc {
            out.extend(b.params());
        }
        out.extend(self.bottleneck.params());
        for u in &mut self.ups {
            out.extend(u.params());
        }
        for m in &mut self.merges {
            out.extend(m.params());
        }
        out.extend(self.head.params());
        out
    }

    fn buffers(&mut self) -> Vec<&mut Vec<f64>> {
        let mut out = Vec::new();
        for b in &mut self.enc {
            out.extend(b.buffers());
        }
        out.extend(self.bottleneck.buffers());
        for m in &mut self.merges {
            out.extend(m.buffers());
        }
        out
    }

    fn name(&self) -> String {
        format!(
            "UNet(depth={}, base={}, {})",
            self.cfg.depth,
            self.cfg.base_filters,
            if self.cfg.two_d { "2D" } else { "3D" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradient, FD_EPS_COARSE, FD_TOL_COARSE};

    fn small_cfg() -> UNetConfig {
        UNetConfig {
            depth: 2,
            base_filters: 2,
            two_d: true,
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn forward_shape_matches_input() {
        let mut net = UNet::new(small_cfg());
        let y = net.forward(&Tensor::zeros([2, 1, 1, 8, 8]), false);
        assert_eq!(y.dims(), &[2, 1, 1, 8, 8]);
    }

    /// The fused in-place bn+act pass must be bitwise the two-tensor
    /// pipeline, in both the bn and the bn-less arm — including negative
    /// values that take the leaky slope.
    #[test]
    fn finish_inplace_is_bitwise_the_layer_pipeline() {
        let mut rng = StdRng::seed_from_u64(11);
        for batch_norm in [true, false] {
            let cfg = UNetConfig {
                batch_norm,
                ..small_cfg()
            };
            let mut net = UNet::new(cfg);
            // Non-trivial running stats so the affine map actually scales.
            net.forward(
                &Tensor::rand_uniform([2, 1, 1, 8, 8], -2.0, 2.0, &mut rng),
                true,
            );
            let block = &net.enc[0];
            let h = Tensor::rand_uniform([2, 2, 1, 4, 4], -3.0, 3.0, &mut rng);
            let mut fused = h.clone();
            block.finish_inplace(&mut fused);
            let mut expect = h;
            if let Some(bn) = &block.bn {
                expect = bn.infer(&expect);
            }
            expect = block.act.infer(&expect);
            let same = fused
                .as_slice()
                .iter()
                .zip(expect.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "fused pass diverged (batch_norm = {batch_norm})");
        }
    }

    #[test]
    fn output_in_unit_interval_with_sigmoid() {
        let mut net = UNet::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -2.0, 2.0, &mut rng);
        let y = net.forward(&x, false);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn resolution_agnostic_forward() {
        // The same weights accept multiple resolutions (multigrid property).
        let mut net = UNet::new(small_cfg());
        for m in [8usize, 16, 32] {
            let y = net.forward(&Tensor::zeros([1, 1, 1, m, m]), false);
            assert_eq!(y.dims(), &[1, 1, 1, m, m]);
        }
    }

    #[test]
    fn three_d_forward_shape() {
        let cfg = UNetConfig {
            depth: 2,
            base_filters: 2,
            two_d: false,
            seed: 3,
            ..Default::default()
        };
        let mut net = UNet::new(cfg);
        let y = net.forward(&Tensor::zeros([1, 1, 4, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 1, 4, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_input_rejected() {
        let mut net = UNet::new(small_cfg());
        let _ = net.forward(&Tensor::zeros([1, 1, 1, 6, 8]), false);
    }

    #[test]
    fn deterministic_init() {
        let mut a = UNet::new(small_cfg());
        let mut b = UNet::new(small_cfg());
        let pa = a
            .params()
            .iter()
            .map(|p| p.data.clone())
            .collect::<Vec<_>>();
        let pb = b
            .params()
            .iter()
            .map(|p| p.data.clone())
            .collect::<Vec<_>>();
        assert_eq!(pa, pb);
    }

    #[test]
    fn parameter_count_reasonable() {
        // Paper-scale 3D network: depth 3, base 16 -> a few hundred k params.
        let mut net = UNet::new(UNetConfig::paper_3d());
        let n = net.num_parameters();
        assert!(n > 100_000 && n < 5_000_000, "{n}");
    }

    #[test]
    fn deepened_keeps_learned_weights() {
        let mut old = UNet::new(small_cfg());
        let enc0_w = old.enc[0].conv.weight.data.clone();
        let bott_w = old.bottleneck.conv.weight.data.clone();
        let mut new = old.deepened();
        assert_eq!(new.cfg.depth, 3);
        assert_eq!(new.enc[0].conv.weight.data, enc0_w);
        assert_eq!(
            new.enc[2].conv.weight.data, bott_w,
            "old bottleneck becomes deepest encoder"
        );
        // And it still runs at a resolution divisible by 2^3.
        let y = new.forward(&Tensor::zeros([1, 1, 1, 16, 16]), false);
        assert_eq!(y.dims(), &[1, 1, 1, 16, 16]);
        let _ = old.forward(&Tensor::zeros([1, 1, 1, 8, 8]), false);
    }

    #[test]
    fn concat_split_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::rand_uniform([2, 3, 1, 4, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([2, 2, 1, 4, 4], -1.0, 1.0, &mut rng);
        let cat = concat_channels(&a, &b);
        assert_eq!(cat.dims(), &[2, 5, 1, 4, 4]);
        let (a2, b2) = split_channels(&cat, 3);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        // Train a few steps first so batch-norm running stats are
        // non-trivial, then compare the exclusive and shared-state paths.
        let mut net = UNet::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..3 {
            let x = Tensor::rand_uniform([2, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
            let _ = net.forward(&x, true);
        }
        let x = Tensor::rand_uniform([2, 1, 1, 16, 16], -2.0, 2.0, &mut rng);
        let y = net.forward(&x, false);
        let mut ws = Workspace::new();
        let yi = net.infer(&x, &mut ws);
        assert!(y
            .as_slice()
            .iter()
            .zip(yi.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Workspace reuse across calls (and resolutions) stays identical.
        let x2 = Tensor::rand_uniform([1, 1, 1, 8, 8], -2.0, 2.0, &mut rng);
        let y2 = net.forward(&x2, false);
        let yi2 = net.infer(&x2, &mut ws);
        assert!(y2
            .as_slice()
            .iter()
            .zip(yi2.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn infer_batch_chunking_matches_forward_bitwise() {
        // 32×32 per sample exceeds BATCH_CHUNK_VOL, so a batch-3 infer runs
        // sample-by-sample; values must stay bitwise equal to the all-at-
        // once exclusive forward.
        let mut net = UNet::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..2 {
            let x = Tensor::rand_uniform([2, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
            let _ = net.forward(&x, true);
        }
        let x = Tensor::rand_uniform([3, 1, 1, 32, 32], -2.0, 2.0, &mut rng);
        const { assert!(32 * 32 > BATCH_CHUNK_VOL, "test must exercise the chunker") };
        let y = net.forward(&x, false);
        let yi = net.infer(&x, &mut Workspace::new());
        assert_eq!(y.dims(), yi.dims());
        assert!(y
            .as_slice()
            .iter()
            .zip(yi.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn f32_infer_matches_f64_within_tol() {
        use mgd_tensor::Element;
        // Train a few steps so batch-norm running stats are non-trivial,
        // then compare the f32 replica against the f64 master path.
        let mut net = UNet::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..3 {
            let x = Tensor::rand_uniform([2, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
            let _ = net.forward(&x, true);
        }
        let net32 = net.to_f32();
        let x = Tensor::rand_uniform([2, 1, 1, 16, 16], -2.0, 2.0, &mut rng);
        let y64 = net.infer(&x, &mut Workspace::new());
        let y32 = net32.infer(&x.cast::<f32>(), &mut Workspace::<f32>::new());
        let err = y64.rel_l2_error(&y32.cast::<f64>());
        assert!(
            err < <f32 as Element>::EQUIV_TOL,
            "f32 infer drifted {err} from f64"
        );
    }

    #[test]
    fn f32_infer_is_bitwise_deterministic() {
        // Repeat runs — fresh workspace, reused workspace, and concurrent
        // shared readers — must produce identical f32 bit patterns.
        let mut net = UNet::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(43);
        let _ = net.forward(
            &Tensor::rand_uniform([2, 1, 1, 8, 8], -1.0, 1.0, &mut rng),
            true,
        );
        let net32 = net.to_f32();
        let x = Tensor::rand_uniform([1, 1, 1, 16, 16], -1.0, 1.0, &mut rng).cast::<f32>();
        let mut ws = Workspace::<f32>::new();
        let y1 = net32.infer(&x, &mut ws);
        let y2 = net32.infer(&x, &mut ws);
        let y3 = net32.infer(&x, &mut Workspace::<f32>::new());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let net32 = &net32;
                    let x = &x;
                    s.spawn(move || net32.infer(x, &mut Workspace::<f32>::new()))
                })
                .collect();
            for h in handles {
                let y = h.join().expect("reader thread panicked");
                assert!(y
                    .as_slice()
                    .iter()
                    .zip(y1.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        });
        for other in [&y2, &y3] {
            assert!(y1
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn infer_matches_forward_bitwise_3d_direct() {
        let cfg = UNetConfig {
            depth: 2,
            base_filters: 2,
            two_d: false,
            seed: 13,
            conv_backend: ConvBackend::Direct,
            ..Default::default()
        };
        let mut net = UNet::new(cfg);
        let mut rng = StdRng::seed_from_u64(22);
        let x = Tensor::rand_uniform([1, 1, 4, 8, 8], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, false);
        let yi = net.infer(&x, &mut Workspace::new());
        assert!(y
            .as_slice()
            .iter()
            .zip(yi.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn shared_model_serves_concurrent_threads() {
        use crate::model::Model;
        // share() exports an Arc'd read-only view; four threads predict the
        // same input simultaneously with no &mut anywhere and must agree
        // bitwise with the exclusive serial path.
        let mut net = UNet::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(23);
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let expect = net.forward(&x, false);
        let shared = net.share().expect("UNet supports shared inference");
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let shared = &shared;
                    let x = &x;
                    s.spawn(move || shared.infer(x, &mut Workspace::new()))
                })
                .collect();
            for h in handles {
                let y = h.join().expect("reader thread panicked");
                assert!(y
                    .as_slice()
                    .iter()
                    .zip(expect.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        });
    }

    #[test]
    fn unet_end_to_end_gradcheck() {
        // Small end-to-end check: validates the full skip/concat wiring.
        let cfg = UNetConfig {
            depth: 2,
            base_filters: 2,
            two_d: true,
            batch_norm: false, // keep fd noise low for the composite check
            seed: 4,
            ..Default::default()
        };
        let net = UNet::new(cfg);
        check_layer_gradient(
            Box::new(net),
            &[1, 1, 1, 8, 8],
            0.0,
            FD_EPS_COARSE,
            FD_TOL_COARSE,
        );
    }

    #[test]
    fn unet_with_bn_gradcheck() {
        let cfg = UNetConfig {
            depth: 1,
            base_filters: 2,
            two_d: true,
            seed: 5,
            ..Default::default()
        };
        let net = UNet::new(cfg);
        check_layer_gradient(
            Box::new(net),
            &[2, 1, 1, 4, 4],
            0.0,
            FD_EPS_COARSE,
            FD_TOL_COARSE,
        );
    }
}
