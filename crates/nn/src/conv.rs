//! 3D convolution with hand-written backprop: a blocked-GEMM lowering
//! (default) plus the original direct sliding-window kernels, selected by
//! [`ConvBackend`].

use crate::layer::{Dims5, Layer, Triple};
use crate::lowering::{
    anchor_chunks, anchor_chunks_range, bias_grad, col2im_accumulate, col2im_range_accumulate,
    im2col, im2col_range, ConvBackend, ConvGeom, Scratch, PATCH_CACHE_MAX,
};
use crate::param::Param;
use crate::spatial::SplitAxis;
use crate::util::{tap_range, SendPtr};
use crate::workspace::Workspace;
use mgd_tensor::matmul::{gemm, gemm_prepacked, pack_a, PackedA};
use mgd_tensor::par::maybe_par_for;
use mgd_tensor::{Element, GemmElement, Tensor};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of weight-panel packs built by [`Conv3d::prepack`].
static PREPACK_BUILDS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of inference calls that reused prepacked panels
/// instead of re-packing the weight matrix.
static PREPACK_REUSES: AtomicU64 = AtomicU64::new(0);

/// Returns `(builds, reuses)` for prepacked conv weight panels — tests and
/// benches use the deltas to assert that a model snapshot packs each layer
/// once and then serves every slab/request from the cached panels.
pub fn prepack_stats() -> (u64, u64) {
    (
        PREPACK_BUILDS.load(Ordering::Relaxed),
        PREPACK_REUSES.load(Ordering::Relaxed),
    )
}

/// A 3D convolution `y = W ⊛ x + b` over NCDHW tensors.
///
/// Weight layout `[out_c, in_c, kd, kh, kw]`. 2D networks use kernels with
/// unit depth (`(1, k, k)`), so a single implementation serves both the 2D
/// and 3D experiments of the paper.
///
/// The forward/backward kernels run on the [`ConvBackend`] selected at
/// construction (default [`ConvBackend::Gemm`]): each pass lowers onto one
/// blocked matrix product per sample — `Y = W·im2col(X)`,
/// `dX = col2im(Wᵀ·dY)`, `dW += dY·im2col(X)ᵀ` — sharing the packed weight
/// panels across the batch.
#[derive(Clone, Debug)]
pub struct Conv3d<E: Element = f64> {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel extents (kd, kh, kw).
    pub kernel: Triple,
    /// Strides (sd, sh, sw).
    pub stride: Triple,
    /// Zero-padding (pd, ph, pw).
    pub padding: Triple,
    /// Filter weights.
    pub weight: Param<E>,
    /// Per-output-channel bias.
    pub bias: Param<E>,
    /// Kernel implementation to run.
    pub backend: ConvBackend,
    /// Cached training activation — training is `f64`-only, so this stays
    /// concrete (always empty in non-`f64` instantiations).
    cache_x: Option<Tensor>,
    scratch: Scratch<E>,
    /// Weight panels packed once by [`Conv3d::prepack`] and reused by every
    /// inference call until the weights can change again (any training
    /// forward or `params()` borrow invalidates them).
    prepacked: Option<PackedA<E>>,
}

impl Conv3d {
    /// Fully configured constructor with Kaiming initialization.
    pub fn new<R: Rng>(
        in_c: usize,
        out_c: usize,
        kernel: Triple,
        stride: Triple,
        padding: Triple,
        rng: &mut R,
    ) -> Self {
        let (kd, kh, kw) = kernel;
        let fan_in = in_c * kd * kh * kw;
        Conv3d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            weight: Param::kaiming([out_c, in_c, kd, kh, kw], fan_in, rng),
            bias: Param::zeros([out_c]),
            backend: ConvBackend::default(),
            cache_x: None,
            scratch: Scratch::default(),
            prepacked: None,
        }
    }

    /// Stride-1 "same" convolution (odd kernels only).
    pub fn same<R: Rng>(in_c: usize, out_c: usize, kernel: Triple, rng: &mut R) -> Self {
        let (kd, kh, kw) = kernel;
        assert!(
            kd % 2 == 1 && kh % 2 == 1 && kw % 2 == 1,
            "same-padding needs odd kernels"
        );
        Conv3d::new(
            in_c,
            out_c,
            kernel,
            (1, 1, 1),
            ((kd - 1) / 2, (kh - 1) / 2, (kw - 1) / 2),
            rng,
        )
    }
}

impl<E: Element> Conv3d<E> {
    /// Selects the kernel implementation (builder-style).
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Output spatial dims for the given input dims.
    pub fn out_dims(&self, din: &Dims5) -> Dims5 {
        let o = |i: usize, k: usize, s: usize, p: usize| {
            assert!(i + 2 * p >= k, "input {i} too small for kernel {k} pad {p}");
            (i + 2 * p - k) / s + 1
        };
        Dims5 {
            n: din.n,
            c: self.out_c,
            d: o(din.d, self.kernel.0, self.stride.0, self.padding.0),
            h: o(din.h, self.kernel.1, self.stride.1, self.padding.1),
            w: o(din.w, self.kernel.2, self.stride.2, self.padding.2),
        }
    }

    /// Lowering geometry over the *input* grid of one sample.
    fn geom(&self, din: &Dims5, dout: &Dims5) -> ConvGeom {
        ConvGeom {
            c: self.in_c,
            dims: (din.d, din.h, din.w),
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            out: (dout.d, dout.h, dout.w),
        }
    }

    /// Converts the layer weights to another element type (through `f64`);
    /// the copy starts with empty scratch and no cached activation.
    pub fn cast_as<T: Element>(&self) -> Conv3d<T> {
        Conv3d {
            in_c: self.in_c,
            out_c: self.out_c,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            weight: self.weight.cast_as(),
            bias: self.bias.cast_as(),
            backend: self.backend,
            cache_x: None,
            scratch: Scratch::default(),
            prepacked: None,
        }
    }
}

impl Conv3d {
    /// GEMM forward: per sample, `Y_n = W · im2col(X_n)` (+ bias), sharing
    /// the packed weight panels across the batch.
    ///
    /// Small problems gather the whole patch matrix at once (and keep it
    /// for the weight-gradient GEMM when training within
    /// [`PATCH_CACHE_MAX`]); megavoxel problems stream cache-resident
    /// column chunks through gather → GEMM so the patch matrix never
    /// round-trips DRAM.
    fn forward_gemm(&mut self, x: &Tensor, din: &Dims5, dout: &Dims5, train: bool) -> Tensor {
        let geom = self.geom(din, dout);
        let (kdim, p) = (geom.rows(), geom.cols());
        let ow = dout.w;
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        // The [out_c, in_c, kd, kh, kw] weight is already the out_c × kdim
        // matrix row-major — pack it once for the whole batch.
        let pa = pack_a(self.weight.data.as_slice(), self.out_c, kdim, false);
        let xs = x.as_slice();
        let bs = self.bias.data.as_slice();
        let ys = y.as_mut_slice();
        let cache_patches = train && din.n * kdim * p <= PATCH_CACHE_MAX;
        let Scratch {
            col,
            ctmp,
            cached,
            cached_valid,
            ..
        } = &mut self.scratch;
        *cached_valid = cache_patches;
        if cache_patches {
            cached.resize(din.n * kdim * p, 0.0);
        }
        for ni in 0..din.n {
            let xslab = &xs[ni * self.in_c * geom.vol()..][..self.in_c * geom.vol()];
            let yslab = &mut ys[ni * self.out_c * p..][..self.out_c * p];
            if cache_patches {
                let colslab = &mut cached[ni * kdim * p..(ni + 1) * kdim * p];
                im2col(&geom, xslab, colslab);
                // Seed each output row with its bias; the GEMM accumulates
                // the patch products on top.
                for (oc, row) in yslab.chunks_exact_mut(p).enumerate() {
                    row.fill(bs[oc]);
                }
                gemm_prepacked(&pa, colslab, false, yslab, p, true);
            } else {
                for (ar0, ar1) in anchor_chunks(&geom) {
                    let cc = (ar1 - ar0) * ow;
                    col.resize(kdim * cc, 0.0);
                    im2col_range(&geom, xslab, col, ar0, ar1);
                    ctmp.resize(self.out_c * cc, 0.0);
                    gemm_prepacked(&pa, col, false, ctmp, cc, false);
                    for oc in 0..self.out_c {
                        let b = bs[oc];
                        let dst = &mut yslab[oc * p + ar0 * ow..oc * p + ar1 * ow];
                        for (d, s) in dst.iter_mut().zip(&ctmp[oc * cc..(oc + 1) * cc]) {
                            *d = b + s;
                        }
                    }
                }
            }
        }
        y
    }

    /// GEMM backward: `dW += dY_n · im2col(X_n)ᵀ` over cached (or
    /// re-gathered) patch matrices, and `dX_n = col2im(Wᵀ · dY_n)` —
    /// chunked like the forward pass when the patch matrix is not cached.
    fn backward_gemm(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        din: &Dims5,
        dout: &Dims5,
    ) -> Tensor {
        let geom = self.geom(din, dout);
        let (kdim, p) = (geom.rows(), geom.cols());
        let ow = dout.w;
        let g = grad_out.as_slice();
        let xs = x.as_slice();
        // Packed Wᵀ (kdim × out_c) shared across the batch.
        let pat = pack_a(self.weight.data.as_slice(), kdim, self.out_c, true);
        let gw = self.weight.grad.as_mut_slice();
        let mut gx = Tensor::zeros([din.n, din.c, din.d, din.h, din.w]);
        let gxs = gx.as_mut_slice();
        let Scratch {
            col,
            col2,
            tmp,
            cached,
            cached_valid,
            ..
        } = &mut self.scratch;
        let use_cache = *cached_valid;
        for ni in 0..din.n {
            let gslab = &g[ni * self.out_c * p..][..self.out_c * p];
            let xslab = &xs[ni * self.in_c * geom.vol()..][..self.in_c * geom.vol()];
            let gxslab = &mut gxs[ni * self.in_c * geom.vol()..][..self.in_c * geom.vol()];
            if use_cache {
                let colslab = &cached[ni * kdim * p..(ni + 1) * kdim * p];
                // Weight gradient (k-dimension = window positions — the
                // split-k GEMM shape at fine grids).
                gemm(self.out_c, kdim, p, gslab, false, colslab, true, gw, true);
                // Data gradient.
                col2.resize(kdim * p, 0.0);
                gemm_prepacked(&pat, gslab, false, col2, p, false);
                col2im_accumulate(&geom, col2, gxslab);
            } else {
                for (ar0, ar1) in anchor_chunks(&geom) {
                    let cc = (ar1 - ar0) * ow;
                    // Contiguous copy of this chunk's gradient columns
                    // (rows of dY_n are strided by the full position count).
                    tmp.resize(self.out_c * cc, 0.0);
                    for oc in 0..self.out_c {
                        tmp[oc * cc..(oc + 1) * cc]
                            .copy_from_slice(&gslab[oc * p + ar0 * ow..oc * p + ar1 * ow]);
                    }
                    col.resize(kdim * cc, 0.0);
                    im2col_range(&geom, xslab, col, ar0, ar1);
                    gemm(self.out_c, kdim, cc, tmp, false, col, true, gw, true);
                    col2.resize(kdim * cc, 0.0);
                    gemm_prepacked(&pat, tmp, false, col2, cc, false);
                    col2im_range_accumulate(&geom, col2, gxslab, ar0, ar1);
                }
            }
        }
        *cached_valid = false;
        gx
    }

    /// Inference forward restricted to output planes `keep` along `axis`
    /// — the kernel of the slab-decomposed spatial forward
    /// ([`crate::spatial`]): the input is a rank's halo-extended slab and
    /// `keep` selects the owned output planes, so each rank gathers/
    /// multiplies only the patch columns it owns.
    ///
    /// Returns `[n, out_c, keep.len(), oh, ow]` for [`SplitAxis::Depth`]
    /// and `[n, out_c, 1, keep.len(), ow]` for [`SplitAxis::Height`]
    /// (which requires a unit output depth axis). Values are bitwise
    /// identical to the corresponding planes of [`Layer::forward`] on the
    /// same input: restricting the anchor-row range only drops patch
    /// columns, and every output element is still produced by one GEMM
    /// over the full shared dimension in a fixed order. No activation is
    /// cached (this is a serving-only path).
    pub fn forward_planes(
        &mut self,
        x: &Tensor,
        keep: std::ops::Range<usize>,
        axis: SplitAxis,
    ) -> Tensor {
        // A range forward never caches patches; invalidate like forward().
        self.scratch.cached_valid = false;
        let mut ws = Workspace::new();
        self.infer_planes(x, keep, axis, &mut ws)
    }

    /// Accumulates the per-channel bias gradient (shared lowering helper).
    fn bias_grad(&mut self, grad_out: &Tensor, dout: &Dims5) {
        bias_grad(
            grad_out.as_slice(),
            dout.n,
            dout.c,
            dout.vol(),
            self.bias.grad.as_mut_slice(),
        );
    }

    /// Direct (sliding-window) backward — the reference kernels for the
    /// weight and input gradients.
    fn backward_direct(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        din: &Dims5,
        dout: &Dims5,
    ) -> Tensor {
        let (kd, kh, kw) = self.kernel;
        let (sd, sh, sw) = self.stride;
        let (pd, ph, pw) = self.padding;
        let g = grad_out.as_slice();
        let xs = x.as_slice();

        // Weight gradient: each oc owns its grad_w slice (parallel over oc).
        {
            let kvol = self.in_c * kd * kh * kw;
            let ptr = SendPtr(self.weight.grad.as_mut_slice().as_mut_ptr());
            maybe_par_for(dout.c, dout.n * dout.vol() * kvol, |oc| {
                // SAFETY: each oc task owns a disjoint weight-grad block.
                let gw = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(oc * kvol), kvol) };
                for n in 0..dout.n {
                    let gbase = (n * dout.c + oc) * dout.vol();
                    let mut oi = 0usize;
                    for od in 0..dout.d {
                        let (kd_lo, kd_hi) = tap_range(od, sd, pd, kd, din.d);
                        for oh in 0..dout.h {
                            let (kh_lo, kh_hi) = tap_range(oh, sh, ph, kh, din.h);
                            for ow in 0..dout.w {
                                let (kw_lo, kw_hi) = tap_range(ow, sw, pw, kw, din.w);
                                let gv = g[gbase + oi];
                                oi += 1;
                                if gv == 0.0 {
                                    continue;
                                }
                                for ic in 0..self.in_c {
                                    let xbase = (n * self.in_c + ic) * din.vol();
                                    let wbase = ic * kd * kh * kw;
                                    for kdi in kd_lo..kd_hi {
                                        let id = od * sd + kdi - pd;
                                        for khi in kh_lo..kh_hi {
                                            let ih = oh * sh + khi - ph;
                                            let xrow = xbase
                                                + (id * din.h + ih) * din.w
                                                + (ow * sw + kw_lo - pw);
                                            let wrow = wbase + (kdi * kh + khi) * kw + kw_lo;
                                            for t in 0..(kw_hi - kw_lo) {
                                                gw[wrow + t] += gv * xs[xrow + t];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }

        // Input gradient: scatter form, parallel over (n, ic)… but each
        // (n, ·) task needs all oc; parallelize over n and write the full
        // per-sample block.
        let mut gx: Tensor = Tensor::zeros([din.n, din.c, din.d, din.h, din.w]);
        {
            let ws = self.weight.data.as_slice();
            let sample_block = din.c * din.vol();
            let ptr = SendPtr(gx.as_mut_slice().as_mut_ptr());
            maybe_par_for(din.n, dout.c * dout.vol() * self.in_c * kd * kh * kw, |n| {
                // SAFETY: each n task owns a disjoint input-grad block.
                let gxb = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(n * sample_block), sample_block)
                };
                for oc in 0..dout.c {
                    let gbase = (n * dout.c + oc) * dout.vol();
                    let mut oi = 0usize;
                    for od in 0..dout.d {
                        let (kd_lo, kd_hi) = tap_range(od, sd, pd, kd, din.d);
                        for oh in 0..dout.h {
                            let (kh_lo, kh_hi) = tap_range(oh, sh, ph, kh, din.h);
                            for ow in 0..dout.w {
                                let (kw_lo, kw_hi) = tap_range(ow, sw, pw, kw, din.w);
                                let gv = g[gbase + oi];
                                oi += 1;
                                if gv == 0.0 {
                                    continue;
                                }
                                for ic in 0..self.in_c {
                                    let xbase = ic * din.vol();
                                    let wbase = (oc * self.in_c + ic) * kd * kh * kw;
                                    for kdi in kd_lo..kd_hi {
                                        let id = od * sd + kdi - pd;
                                        for khi in kh_lo..kh_hi {
                                            let ih = oh * sh + khi - ph;
                                            let xrow = xbase
                                                + (id * din.h + ih) * din.w
                                                + (ow * sw + kw_lo - pw);
                                            let wrow = wbase + (kdi * kh + khi) * kw + kw_lo;
                                            for t in 0..(kw_hi - kw_lo) {
                                                gxb[xrow + t] += gv * ws[wrow + t];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
        gx
    }
}

impl<E: Element> Conv3d<E> {
    /// Direct (sliding-window) forward — the reference kernel, generic over
    /// the element type (identical operation order for every `E`).
    fn forward_direct(&self, x: &Tensor<E>, din: &Dims5, dout: &Dims5) -> Tensor<E> {
        let mut y: Tensor<E> = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let (kd, kh, kw) = self.kernel;
        let (sd, sh, sw) = self.stride;
        let (pd, ph, pw) = self.padding;
        let xs = x.as_slice();
        let ws = self.weight.data.as_slice();
        let bs = self.bias.data.as_slice();
        let ptr = SendPtr(y.as_mut_slice().as_mut_ptr());
        let out_block = dout.vol();
        maybe_par_for(
            dout.n * dout.c,
            out_block * self.in_c * kd * kh * kw,
            |nc| {
                let n = nc / dout.c;
                let oc = nc % dout.c;
                // SAFETY: each (n, oc) task owns a disjoint output block.
                let yblock = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(nc * out_block), out_block)
                };
                let b = bs[oc];
                let mut oi = 0usize;
                for od in 0..dout.d {
                    let (kd_lo, kd_hi) = tap_range(od, sd, pd, kd, din.d);
                    for oh in 0..dout.h {
                        let (kh_lo, kh_hi) = tap_range(oh, sh, ph, kh, din.h);
                        for ow in 0..dout.w {
                            let (kw_lo, kw_hi) = tap_range(ow, sw, pw, kw, din.w);
                            let mut acc = b;
                            for ic in 0..self.in_c {
                                let xbase = (n * self.in_c + ic) * din.vol();
                                let wbase = (oc * self.in_c + ic) * kd * kh * kw;
                                for kdi in kd_lo..kd_hi {
                                    let id = od * sd + kdi - pd;
                                    for khi in kh_lo..kh_hi {
                                        let ih = oh * sh + khi - ph;
                                        let xrow = xbase
                                            + (id * din.h + ih) * din.w
                                            + (ow * sw + kw_lo - pw);
                                        let wrow = wbase + (kdi * kh + khi) * kw + kw_lo;
                                        for t in 0..(kw_hi - kw_lo) {
                                            acc += xs[xrow + t] * ws[wrow + t];
                                        }
                                    }
                                }
                            }
                            yblock[oi] = acc;
                            oi += 1;
                        }
                    }
                }
            },
        );
        y
    }
}

impl<E: GemmElement> Conv3d<E> {
    /// Packs the weight matrix into GEMM micro-panels once, so every
    /// subsequent [`Conv3d::infer`] / [`Conv3d::infer_planes_into`] call
    /// skips the pack — the "prepack once per snapshot, reuse across
    /// slabs, layers, and requests" half of the serving fast path. The
    /// panels are a pure function of the weight bytes, so cached and
    /// fresh packs produce bitwise-identical results.
    pub fn prepack(&mut self) {
        let (kd, kh, kw) = self.kernel;
        let kdim = self.in_c * kd * kh * kw;
        self.prepacked = Some(pack_a(self.weight.data.as_slice(), self.out_c, kdim, false));
        PREPACK_BUILDS.fetch_add(1, Ordering::Relaxed);
    }

    /// Borrows the prepacked panels if present (counting the reuse), else
    /// packs into `local` for this call only.
    fn packed<'a>(&'a self, kdim: usize, local: &'a mut Option<PackedA<E>>) -> &'a PackedA<E> {
        match &self.prepacked {
            Some(pa) => {
                PREPACK_REUSES.fetch_add(1, Ordering::Relaxed);
                pa
            }
            None => local.insert(pack_a(self.weight.data.as_slice(), self.out_c, kdim, false)),
        }
    }

    /// Shared-state inference forward: bitwise identical to
    /// `forward(x, false)` at the default `f64` element, but `&self` — all
    /// transient buffers live in the caller's [`Workspace`], so one set of
    /// weights behind an `Arc` can serve any number of concurrent callers.
    ///
    /// The Gemm path runs the same streamed gather → GEMM chunk loop as the
    /// inference branch of [`Layer::forward`] (inference never caches
    /// patches), so values match that path bit for bit.
    pub fn infer(&self, x: &Tensor<E>, ws: &mut Workspace<E>) -> Tensor<E> {
        let din = Dims5::of(x);
        assert_eq!(din.c, self.in_c, "channel mismatch");
        let dout = self.out_dims(&din);
        if self.backend == ConvBackend::Direct {
            return self.forward_direct(x, &din, &dout);
        }
        let geom = self.geom(&din, &dout);
        let (kdim, p) = (geom.rows(), geom.cols());
        let ow = dout.w;
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let mut local = None;
        let pa = self.packed(kdim, &mut local);
        let xs = x.as_slice();
        let bs = self.bias.data.as_slice();
        let ys = y.as_mut_slice();
        let Workspace { col, ctmp, .. } = ws;
        for ni in 0..din.n {
            let xslab = &xs[ni * self.in_c * geom.vol()..][..self.in_c * geom.vol()];
            let yslab = &mut ys[ni * self.out_c * p..][..self.out_c * p];
            for (ar0, ar1) in anchor_chunks(&geom) {
                let cc = (ar1 - ar0) * ow;
                col.resize(kdim * cc, E::ZERO);
                im2col_range(&geom, xslab, col, ar0, ar1);
                ctmp.resize(self.out_c * cc, E::ZERO);
                gemm_prepacked(pa, col, false, ctmp, cc, false);
                for oc in 0..self.out_c {
                    let b = bs[oc];
                    let dst = &mut yslab[oc * p + ar0 * ow..oc * p + ar1 * ow];
                    for (d, s) in dst.iter_mut().zip(&ctmp[oc * cc..(oc + 1) * cc]) {
                        *d = b + *s;
                    }
                }
            }
        }
        y
    }

    /// [`Conv3d::infer_planes_into`] with a freshly allocated output of
    /// exactly `keep.len()` planes. Panics on an empty `keep`.
    pub fn infer_planes(
        &self,
        x: &Tensor<E>,
        keep: std::ops::Range<usize>,
        axis: SplitAxis,
        ws: &mut Workspace<E>,
    ) -> Tensor<E> {
        assert!(keep.start < keep.end, "empty output plane range");
        let din = Dims5::of(x);
        let dout = self.out_dims(&din);
        let odims = match axis {
            SplitAxis::Depth => [din.n, self.out_c, keep.len(), dout.h, dout.w],
            SplitAxis::Height => [din.n, self.out_c, 1, keep.len(), dout.w],
        };
        let mut y = Tensor::zeros(odims);
        self.infer_planes_into(x, keep, axis, &mut y, 0, ws);
        y
    }

    /// Inference forward restricted to output planes `keep` along `axis`,
    /// written into `dst` starting at plane `dst_plane0` — the kernel of
    /// the slab-decomposed spatial forward ([`crate::spatial`]).
    ///
    /// `dst` is `[n, out_c, P, oh, ow]` for [`SplitAxis::Depth`] (any
    /// `P ≥ dst_plane0 + keep.len()`) and `[n, out_c, 1, P, ow]` for
    /// [`SplitAxis::Height`] (which requires a unit output depth axis).
    /// Writing disjoint `keep` bands of the same `dst` in any order
    /// yields bitwise-identical planes to one full [`Conv3d::infer`] on
    /// the union input: restricting the anchor-row range only drops patch
    /// columns, and every output element is still produced by one GEMM
    /// over the full shared dimension in a fixed order — this is what
    /// makes the interior/boundary split of the overlapped halo exchange
    /// exact. An empty `keep` is a no-op. No activation is cached (this
    /// is a serving-only path).
    pub fn infer_planes_into(
        &self,
        x: &Tensor<E>,
        keep: std::ops::Range<usize>,
        axis: SplitAxis,
        dst: &mut Tensor<E>,
        dst_plane0: usize,
        ws: &mut Workspace<E>,
    ) {
        let din = Dims5::of(x);
        assert_eq!(din.c, self.in_c, "channel mismatch");
        let dout = self.out_dims(&din);
        let ddst = Dims5::of(dst);
        assert_eq!(ddst.n, din.n, "dst batch mismatch");
        assert_eq!(ddst.c, self.out_c, "dst channel mismatch");
        assert_eq!(ddst.w, dout.w, "dst width mismatch");
        let (ar0, ar1, plane_rows) = match axis {
            SplitAxis::Depth => {
                assert!(keep.end <= dout.d, "plane range exceeds output depth");
                assert_eq!(ddst.h, dout.h, "dst height mismatch");
                (keep.start * dout.h, keep.end * dout.h, dout.h)
            }
            SplitAxis::Height => {
                assert_eq!(dout.d, 1, "height split needs a unit depth axis");
                assert!(keep.end <= dout.h, "plane range exceeds output height");
                assert_eq!(ddst.d, 1, "dst depth mismatch");
                (keep.start, keep.end, 1)
            }
        };
        if ar0 >= ar1 {
            return;
        }
        let ow = dout.w;
        let dst_row0 = dst_plane0 * plane_rows;
        let dst_rows = ddst.d * ddst.h;
        assert!(
            dst_row0 + (ar1 - ar0) <= dst_rows,
            "dst plane range out of bounds"
        );
        let pvol = ddst.vol();
        let ys = dst.as_mut_slice();
        if self.backend == ConvBackend::Direct {
            // Reference path: full sliding-window pass, then carve the kept
            // anchor rows (bitwise identical to computing them in place).
            let full = self.forward_direct(x, &din, &dout);
            let p_full = dout.vol();
            let fs = full.as_slice();
            for nc in 0..din.n * self.out_c {
                let src = &fs[nc * p_full + ar0 * ow..nc * p_full + ar1 * ow];
                ys[nc * pvol + dst_row0 * ow..][..src.len()].copy_from_slice(src);
            }
            return;
        }
        let geom = self.geom(&din, &dout);
        let kdim = geom.rows();
        let mut local = None;
        let pa = self.packed(kdim, &mut local);
        let xs = x.as_slice();
        let bs = self.bias.data.as_slice();
        let Workspace { col, ctmp, .. } = ws;
        for ni in 0..din.n {
            let xslab = &xs[ni * self.in_c * geom.vol()..][..self.in_c * geom.vol()];
            let yslab = &mut ys[ni * self.out_c * pvol..][..self.out_c * pvol];
            for (c0, c1) in anchor_chunks_range(&geom, ar0, ar1) {
                let cc = (c1 - c0) * ow;
                col.resize(kdim * cc, E::ZERO);
                im2col_range(&geom, xslab, col, c0, c1);
                ctmp.resize(self.out_c * cc, E::ZERO);
                gemm_prepacked(pa, col, false, ctmp, cc, false);
                for oc in 0..self.out_c {
                    let b = bs[oc];
                    let row0 = dst_row0 + (c0 - ar0);
                    let row1 = dst_row0 + (c1 - ar0);
                    let dstband = &mut yslab[oc * pvol + row0 * ow..oc * pvol + row1 * ow];
                    for (d, s) in dstband.iter_mut().zip(&ctmp[oc * cc..(oc + 1) * cc]) {
                        *d = b + *s;
                    }
                }
            }
        }
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let din = Dims5::of(x);
        assert_eq!(din.c, self.in_c, "channel mismatch");
        let dout = self.out_dims(&din);
        // Every forward invalidates the patch cache up front — only a Gemm
        // training forward re-validates it (inside forward_gemm). Otherwise
        // a backend switch between forwards could leave a stale cache that
        // a later Gemm backward would consume.
        self.scratch.cached_valid = false;
        if train {
            // Training implies an upcoming weight update; stale panels
            // would silently serve old weights.
            self.prepacked = None;
        }
        let y = match self.backend {
            ConvBackend::Direct => self.forward_direct(x, &din, &dout),
            ConvBackend::Gemm => self.forward_gemm(x, &din, &dout, train),
        };
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // `take` instead of clone: backward consumes the cached activation,
        // so the hot path never copies a full input tensor.
        let x = self.cache_x.take().expect("backward before forward");
        let din = Dims5::of(&x);
        let dout = self.out_dims(&din);
        assert_eq!(grad_out.dims(), &[dout.n, dout.c, dout.d, dout.h, dout.w]);
        self.bias_grad(grad_out, &dout);
        match self.backend {
            ConvBackend::Direct => self.backward_direct(&x, grad_out, &din, &dout),
            ConvBackend::Gemm => self.backward_gemm(&x, grad_out, &din, &dout),
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        // Handing out &mut weights invalidates any prepacked panels.
        self.prepacked = None;
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        format!(
            "Conv3d({}→{}, k{:?}, s{:?}, p{:?})",
            self.in_c, self.out_c, self.kernel, self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradient, FD_EPS, FD_TOL};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn identity_kernel_passthrough() {
        let mut c = Conv3d::new(1, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), &mut rng());
        c.weight.data = Tensor::from_vec([1, 1, 1, 1, 1], vec![1.0]);
        c.bias.data = Tensor::from_vec([1], vec![0.0]);
        let x = Tensor::from_vec([1, 1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_1d_convolution() {
        // Width-3 kernel [1, 2, 3] over [1, 1, 1, 1, 4] input, same padding.
        let mut c = Conv3d::same(1, 1, (1, 1, 3), &mut rng());
        c.weight.data = Tensor::from_vec([1, 1, 1, 1, 3], vec![1.0, 2.0, 3.0]);
        c.bias.data = Tensor::from_vec([1], vec![0.5]);
        let x = Tensor::from_vec([1, 1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        // y[i] = 0.5 + 1*x[i-1] + 2*x[i] + 3*x[i+1] (zero-padded)
        assert_eq!(
            y.as_slice(),
            &[
                0.5 + 2.0 + 6.0,
                0.5 + 1.0 + 4.0 + 9.0,
                0.5 + 2.0 + 6.0 + 12.0,
                0.5 + 3.0 + 8.0
            ]
        );
    }

    #[test]
    fn same_padding_preserves_spatial_dims() {
        let mut c = Conv3d::same(2, 5, (3, 3, 3), &mut rng());
        let y = c.forward(&Tensor::zeros([2, 2, 4, 6, 8]), false);
        assert_eq!(y.dims(), &[2, 5, 4, 6, 8]);
    }

    #[test]
    fn stride_two_halves_dims() {
        let mut c = Conv3d::new(1, 3, (2, 2, 2), (2, 2, 2), (0, 0, 0), &mut rng());
        let y = c.forward(&Tensor::zeros([1, 1, 4, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 3, 2, 4, 4]);
    }

    #[test]
    fn resolution_agnostic_weights() {
        // The same filter applied at two resolutions of a constant input
        // produces the same interior value — the property multigrid training
        // relies on (paper §3.1.2).
        let mut c = Conv3d::same(1, 1, (1, 3, 3), &mut rng());
        let y1 = c.forward(&Tensor::ones([1, 1, 1, 8, 8]), false);
        let y2 = c.forward(&Tensor::ones([1, 1, 1, 16, 16]), false);
        let mid1 = y1.at(&[0, 0, 0, 4, 4]);
        let mid2 = y2.at(&[0, 0, 0, 8, 8]);
        assert!((mid1 - mid2).abs() < 1e-12);
    }

    #[test]
    fn linearity_in_input() {
        let mut c = Conv3d::same(2, 3, (1, 3, 3), &mut rng());
        let mut r = rng();
        let a = Tensor::rand_uniform([1, 2, 1, 5, 5], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform([1, 2, 1, 5, 5], -1.0, 1.0, &mut r);
        let ya = c.forward(&a, false);
        let yb = c.forward(&b, false);
        let yab = c.forward(&a.add(&b), false);
        // Conv(a + b) = Conv(a) + Conv(b) - bias (bias counted twice).
        let mut expect = ya.add(&yb);
        for oc in 0..3 {
            let bias = c.bias.data[oc];
            for n in 0..1 {
                for d in 0..1 {
                    for h in 0..5 {
                        for w in 0..5 {
                            *expect.at_mut(&[n, oc, d, h, w]) -= bias;
                        }
                    }
                }
            }
        }
        assert!(yab.rel_l2_error(&expect) < 1e-12);
    }

    #[test]
    fn gradcheck_same_2d_kernel() {
        let c = Conv3d::same(2, 3, (1, 3, 3), &mut rng());
        check_layer_gradient(Box::new(c), &[2, 2, 1, 5, 5], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_3d_kernel() {
        let c = Conv3d::same(1, 2, (3, 3, 3), &mut rng());
        check_layer_gradient(Box::new(c), &[1, 1, 4, 4, 4], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_strided() {
        let c = Conv3d::new(2, 2, (1, 3, 3), (1, 2, 2), (0, 1, 1), &mut rng());
        check_layer_gradient(Box::new(c), &[1, 2, 1, 6, 6], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_1x1() {
        let c = Conv3d::new(3, 2, (1, 1, 1), (1, 1, 1), (0, 0, 0), &mut rng());
        check_layer_gradient(Box::new(c), &[2, 3, 1, 3, 3], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_gemm_backend_explicit() {
        // The default backend is Gemm, but pin it explicitly so this keeps
        // covering the lowering even if the default ever changes.
        let c = Conv3d::same(2, 3, (3, 3, 3), &mut rng()).with_backend(ConvBackend::Gemm);
        check_layer_gradient(Box::new(c), &[1, 2, 4, 4, 4], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gradcheck_direct_backend_explicit() {
        let c = Conv3d::same(2, 3, (3, 3, 3), &mut rng()).with_backend(ConvBackend::Direct);
        check_layer_gradient(Box::new(c), &[1, 2, 4, 4, 4], 0.0, FD_EPS, FD_TOL);
    }

    #[test]
    fn gemm_chunked_path_matches_direct_at_64cubed() {
        // 1×2ch×64³ exceeds both the patch cache and the chunk budget, so
        // this exercises the streamed (chunked) forward AND backward GEMM
        // paths against the direct reference.
        let mut r = rng();
        let mut direct = Conv3d::same(2, 2, (3, 3, 3), &mut r).with_backend(ConvBackend::Direct);
        let mut gemm = direct.clone().with_backend(ConvBackend::Gemm);
        let x = Tensor::rand_uniform([1, 2, 64, 64, 64], -1.0, 1.0, &mut r);
        let yd = direct.forward(&x, true);
        let yg = gemm.forward(&x, true);
        assert!(yd.rel_l2_error(&yg) < 1e-12, "{}", yd.rel_l2_error(&yg));
        let g = Tensor::rand_uniform(yd.dims().to_vec(), -1.0, 1.0, &mut r);
        let gxd = direct.backward(&g);
        let gxg = gemm.backward(&g);
        assert!(gxd.rel_l2_error(&gxg) < 1e-12, "{}", gxd.rel_l2_error(&gxg));
        assert!(direct.weight.grad.rel_l2_error(&gemm.weight.grad) < 1e-12);
        assert!(direct.bias.grad.rel_l2_error(&gemm.bias.grad) < 1e-12);
    }

    #[test]
    fn backend_switch_invalidates_patch_cache() {
        // Regression: a Gemm training forward caches its patch matrix; a
        // Direct training forward on a *different* input used to leave that
        // cache marked valid, so a subsequent Gemm backward consumed stale
        // (wrong-sized) patches. Every forward must invalidate it.
        let mut r = rng();
        let mut conv = Conv3d::same(1, 2, (1, 3, 3), &mut r).with_backend(ConvBackend::Gemm);
        let x1 = Tensor::rand_uniform([1, 1, 1, 4, 4], -1.0, 1.0, &mut r);
        let _ = conv.forward(&x1, true); // fills + validates the patch cache
        conv.backend = ConvBackend::Direct;
        let x2 = Tensor::rand_uniform([1, 1, 1, 6, 6], -1.0, 1.0, &mut r);
        let _ = conv.forward(&x2, true); // must invalidate the x1 cache
        conv.backend = ConvBackend::Gemm;
        let g = Tensor::rand_uniform([1, 2, 1, 6, 6], -1.0, 1.0, &mut r);
        let gx = conv.backward(&g); // panicked (stale 4×4 cache) before the fix
                                    // And the gradients must match a clean single-backend run on x2.
        let mut reference = Conv3d::same(1, 2, (1, 3, 3), &mut rng());
        reference.weight.data = conv.weight.data.clone();
        reference.bias.data = conv.bias.data.clone();
        let _ = reference.forward(&x2, true);
        let gx_ref = reference.backward(&g);
        assert!(gx.rel_l2_error(&gx_ref) < 1e-12);
        assert!(conv.weight.grad.rel_l2_error(&reference.weight.grad) < 1e-12);
    }

    #[test]
    fn infer_matches_forward_bitwise_both_backends() {
        // 20³ per channel stays under the chunk budget while 64³ (covered by
        // the chunked-path test above) exceeds it; both route through the
        // same streamed loop the infer path replicates.
        let mut r = rng();
        for backend in [ConvBackend::Gemm, ConvBackend::Direct] {
            let mut c = Conv3d::same(2, 3, (3, 3, 3), &mut r).with_backend(backend);
            let x = Tensor::rand_uniform([2, 2, 20, 20, 20], -1.0, 1.0, &mut r);
            let y = c.forward(&x, false);
            let mut ws = crate::workspace::Workspace::new();
            let yi = c.infer(&x, &mut ws);
            assert!(y
                .as_slice()
                .iter()
                .zip(yi.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn gemm_forward_is_bitwise_deterministic() {
        let mut r = rng();
        let mut c = Conv3d::same(4, 4, (3, 3, 3), &mut r);
        let x = Tensor::rand_uniform([1, 4, 16, 16, 16], -1.0, 1.0, &mut r);
        let y1 = c.forward(&x, false);
        let y2 = c.forward(&x, false);
        assert!(y1
            .as_slice()
            .iter()
            .zip(y2.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
