//! Direct 3D convolution with hand-written backprop.

use crate::layer::{Dims5, Layer, Triple};
use crate::param::Param;
use crate::util::{tap_range, SendPtr};
use mgd_tensor::par::maybe_par_for;
use mgd_tensor::Tensor;
use rand::Rng;

/// A 3D convolution `y = W ⊛ x + b` over NCDHW tensors.
///
/// Weight layout `[out_c, in_c, kd, kh, kw]`. 2D networks use kernels with
/// unit depth (`(1, k, k)`), so a single implementation serves both the 2D
/// and 3D experiments of the paper.
#[derive(Clone, Debug)]
pub struct Conv3d {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel extents (kd, kh, kw).
    pub kernel: Triple,
    /// Strides (sd, sh, sw).
    pub stride: Triple,
    /// Zero-padding (pd, ph, pw).
    pub padding: Triple,
    /// Filter weights.
    pub weight: Param,
    /// Per-output-channel bias.
    pub bias: Param,
    cache_x: Option<Tensor>,
}

impl Conv3d {
    /// Fully configured constructor with Kaiming initialization.
    pub fn new<R: Rng>(
        in_c: usize,
        out_c: usize,
        kernel: Triple,
        stride: Triple,
        padding: Triple,
        rng: &mut R,
    ) -> Self {
        let (kd, kh, kw) = kernel;
        let fan_in = in_c * kd * kh * kw;
        Conv3d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            weight: Param::kaiming([out_c, in_c, kd, kh, kw], fan_in, rng),
            bias: Param::zeros([out_c]),
            cache_x: None,
        }
    }

    /// Stride-1 "same" convolution (odd kernels only).
    pub fn same<R: Rng>(in_c: usize, out_c: usize, kernel: Triple, rng: &mut R) -> Self {
        let (kd, kh, kw) = kernel;
        assert!(
            kd % 2 == 1 && kh % 2 == 1 && kw % 2 == 1,
            "same-padding needs odd kernels"
        );
        Conv3d::new(
            in_c,
            out_c,
            kernel,
            (1, 1, 1),
            ((kd - 1) / 2, (kh - 1) / 2, (kw - 1) / 2),
            rng,
        )
    }

    /// Output spatial dims for the given input dims.
    pub fn out_dims(&self, din: &Dims5) -> Dims5 {
        let o = |i: usize, k: usize, s: usize, p: usize| {
            assert!(i + 2 * p >= k, "input {i} too small for kernel {k} pad {p}");
            (i + 2 * p - k) / s + 1
        };
        Dims5 {
            n: din.n,
            c: self.out_c,
            d: o(din.d, self.kernel.0, self.stride.0, self.padding.0),
            h: o(din.h, self.kernel.1, self.stride.1, self.padding.1),
            w: o(din.w, self.kernel.2, self.stride.2, self.padding.2),
        }
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let din = Dims5::of(x);
        assert_eq!(din.c, self.in_c, "channel mismatch");
        let dout = self.out_dims(&din);
        let mut y = Tensor::zeros([dout.n, dout.c, dout.d, dout.h, dout.w]);
        let (kd, kh, kw) = self.kernel;
        let (sd, sh, sw) = self.stride;
        let (pd, ph, pw) = self.padding;
        let xs = x.as_slice();
        let ws = self.weight.data.as_slice();
        let bs = self.bias.data.as_slice();
        let ptr = SendPtr(y.as_mut_slice().as_mut_ptr());
        let out_block = dout.vol();
        maybe_par_for(
            dout.n * dout.c,
            out_block * self.in_c * kd * kh * kw,
            |nc| {
                let n = nc / dout.c;
                let oc = nc % dout.c;
                // SAFETY: each (n, oc) task owns a disjoint output block.
                let yblock = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(nc * out_block), out_block)
                };
                let b = bs[oc];
                let mut oi = 0usize;
                for od in 0..dout.d {
                    let (kd_lo, kd_hi) = tap_range(od, sd, pd, kd, din.d);
                    for oh in 0..dout.h {
                        let (kh_lo, kh_hi) = tap_range(oh, sh, ph, kh, din.h);
                        for ow in 0..dout.w {
                            let (kw_lo, kw_hi) = tap_range(ow, sw, pw, kw, din.w);
                            let mut acc = b;
                            for ic in 0..self.in_c {
                                let xbase = (n * self.in_c + ic) * din.vol();
                                let wbase = (oc * self.in_c + ic) * kd * kh * kw;
                                for kdi in kd_lo..kd_hi {
                                    let id = od * sd + kdi - pd;
                                    for khi in kh_lo..kh_hi {
                                        let ih = oh * sh + khi - ph;
                                        let xrow = xbase
                                            + (id * din.h + ih) * din.w
                                            + (ow * sw + kw_lo - pw);
                                        let wrow = wbase + (kdi * kh + khi) * kw + kw_lo;
                                        for t in 0..(kw_hi - kw_lo) {
                                            acc += xs[xrow + t] * ws[wrow + t];
                                        }
                                    }
                                }
                            }
                            yblock[oi] = acc;
                            oi += 1;
                        }
                    }
                }
            },
        );
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward before forward")
            .clone();
        let din = Dims5::of(&x);
        let dout = self.out_dims(&din);
        assert_eq!(grad_out.dims(), &[dout.n, dout.c, dout.d, dout.h, dout.w]);
        let (kd, kh, kw) = self.kernel;
        let (sd, sh, sw) = self.stride;
        let (pd, ph, pw) = self.padding;
        let g = grad_out.as_slice();
        let xs = x.as_slice();

        // Bias gradient: Σ over batch and spatial positions per channel.
        {
            let gb = self.bias.grad.as_mut_slice();
            for n in 0..dout.n {
                for oc in 0..dout.c {
                    let base = (n * dout.c + oc) * dout.vol();
                    let mut s = 0.0;
                    for oi in 0..dout.vol() {
                        s += g[base + oi];
                    }
                    gb[oc] += s;
                }
            }
        }

        // Weight gradient: each oc owns its grad_w slice (parallel over oc).
        {
            let kvol = self.in_c * kd * kh * kw;
            let ptr = SendPtr(self.weight.grad.as_mut_slice().as_mut_ptr());
            maybe_par_for(dout.c, dout.n * dout.vol() * kvol, |oc| {
                // SAFETY: each oc task owns a disjoint weight-grad block.
                let gw = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(oc * kvol), kvol) };
                for n in 0..dout.n {
                    let gbase = (n * dout.c + oc) * dout.vol();
                    let mut oi = 0usize;
                    for od in 0..dout.d {
                        let (kd_lo, kd_hi) = tap_range(od, sd, pd, kd, din.d);
                        for oh in 0..dout.h {
                            let (kh_lo, kh_hi) = tap_range(oh, sh, ph, kh, din.h);
                            for ow in 0..dout.w {
                                let (kw_lo, kw_hi) = tap_range(ow, sw, pw, kw, din.w);
                                let gv = g[gbase + oi];
                                oi += 1;
                                if gv == 0.0 {
                                    continue;
                                }
                                for ic in 0..self.in_c {
                                    let xbase = (n * self.in_c + ic) * din.vol();
                                    let wbase = ic * kd * kh * kw;
                                    for kdi in kd_lo..kd_hi {
                                        let id = od * sd + kdi - pd;
                                        for khi in kh_lo..kh_hi {
                                            let ih = oh * sh + khi - ph;
                                            let xrow = xbase
                                                + (id * din.h + ih) * din.w
                                                + (ow * sw + kw_lo - pw);
                                            let wrow = wbase + (kdi * kh + khi) * kw + kw_lo;
                                            for t in 0..(kw_hi - kw_lo) {
                                                gw[wrow + t] += gv * xs[xrow + t];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }

        // Input gradient: scatter form, parallel over (n, ic)… but each
        // (n, ·) task needs all oc; parallelize over n and write the full
        // per-sample block.
        let mut gx = Tensor::zeros([din.n, din.c, din.d, din.h, din.w]);
        {
            let ws = self.weight.data.as_slice();
            let sample_block = din.c * din.vol();
            let ptr = SendPtr(gx.as_mut_slice().as_mut_ptr());
            maybe_par_for(din.n, dout.c * dout.vol() * self.in_c * kd * kh * kw, |n| {
                // SAFETY: each n task owns a disjoint input-grad block.
                let gxb = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(n * sample_block), sample_block)
                };
                for oc in 0..dout.c {
                    let gbase = (n * dout.c + oc) * dout.vol();
                    let mut oi = 0usize;
                    for od in 0..dout.d {
                        let (kd_lo, kd_hi) = tap_range(od, sd, pd, kd, din.d);
                        for oh in 0..dout.h {
                            let (kh_lo, kh_hi) = tap_range(oh, sh, ph, kh, din.h);
                            for ow in 0..dout.w {
                                let (kw_lo, kw_hi) = tap_range(ow, sw, pw, kw, din.w);
                                let gv = g[gbase + oi];
                                oi += 1;
                                if gv == 0.0 {
                                    continue;
                                }
                                for ic in 0..self.in_c {
                                    let xbase = ic * din.vol();
                                    let wbase = (oc * self.in_c + ic) * kd * kh * kw;
                                    for kdi in kd_lo..kd_hi {
                                        let id = od * sd + kdi - pd;
                                        for khi in kh_lo..kh_hi {
                                            let ih = oh * sh + khi - ph;
                                            let xrow = xbase
                                                + (id * din.h + ih) * din.w
                                                + (ow * sw + kw_lo - pw);
                                            let wrow = wbase + (kdi * kh + khi) * kw + kw_lo;
                                            for t in 0..(kw_hi - kw_lo) {
                                                gxb[xrow + t] += gv * ws[wrow + t];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        format!(
            "Conv3d({}→{}, k{:?}, s{:?}, p{:?})",
            self.in_c, self.out_c, self.kernel, self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn identity_kernel_passthrough() {
        let mut c = Conv3d::new(1, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), &mut rng());
        c.weight.data = Tensor::from_vec([1, 1, 1, 1, 1], vec![1.0]);
        c.bias.data = Tensor::from_vec([1], vec![0.0]);
        let x = Tensor::from_vec([1, 1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_1d_convolution() {
        // Width-3 kernel [1, 2, 3] over [1, 1, 1, 1, 4] input, same padding.
        let mut c = Conv3d::same(1, 1, (1, 1, 3), &mut rng());
        c.weight.data = Tensor::from_vec([1, 1, 1, 1, 3], vec![1.0, 2.0, 3.0]);
        c.bias.data = Tensor::from_vec([1], vec![0.5]);
        let x = Tensor::from_vec([1, 1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        // y[i] = 0.5 + 1*x[i-1] + 2*x[i] + 3*x[i+1] (zero-padded)
        assert_eq!(
            y.as_slice(),
            &[
                0.5 + 2.0 + 6.0,
                0.5 + 1.0 + 4.0 + 9.0,
                0.5 + 2.0 + 6.0 + 12.0,
                0.5 + 3.0 + 8.0
            ]
        );
    }

    #[test]
    fn same_padding_preserves_spatial_dims() {
        let mut c = Conv3d::same(2, 5, (3, 3, 3), &mut rng());
        let y = c.forward(&Tensor::zeros([2, 2, 4, 6, 8]), false);
        assert_eq!(y.dims(), &[2, 5, 4, 6, 8]);
    }

    #[test]
    fn stride_two_halves_dims() {
        let mut c = Conv3d::new(1, 3, (2, 2, 2), (2, 2, 2), (0, 0, 0), &mut rng());
        let y = c.forward(&Tensor::zeros([1, 1, 4, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 3, 2, 4, 4]);
    }

    #[test]
    fn resolution_agnostic_weights() {
        // The same filter applied at two resolutions of a constant input
        // produces the same interior value — the property multigrid training
        // relies on (paper §3.1.2).
        let mut c = Conv3d::same(1, 1, (1, 3, 3), &mut rng());
        let y1 = c.forward(&Tensor::ones([1, 1, 1, 8, 8]), false);
        let y2 = c.forward(&Tensor::ones([1, 1, 1, 16, 16]), false);
        let mid1 = y1.at(&[0, 0, 0, 4, 4]);
        let mid2 = y2.at(&[0, 0, 0, 8, 8]);
        assert!((mid1 - mid2).abs() < 1e-12);
    }

    #[test]
    fn linearity_in_input() {
        let mut c = Conv3d::same(2, 3, (1, 3, 3), &mut rng());
        let mut r = rng();
        let a = Tensor::rand_uniform([1, 2, 1, 5, 5], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform([1, 2, 1, 5, 5], -1.0, 1.0, &mut r);
        let ya = c.forward(&a, false);
        let yb = c.forward(&b, false);
        let yab = c.forward(&a.add(&b), false);
        // Conv(a + b) = Conv(a) + Conv(b) - bias (bias counted twice).
        let mut expect = ya.add(&yb);
        for oc in 0..3 {
            let bias = c.bias.data[oc];
            for n in 0..1 {
                for d in 0..1 {
                    for h in 0..5 {
                        for w in 0..5 {
                            *expect.at_mut(&[n, oc, d, h, w]) -= bias;
                        }
                    }
                }
            }
        }
        assert!(yab.rel_l2_error(&expect) < 1e-12);
    }

    #[test]
    fn gradcheck_same_2d_kernel() {
        let c = Conv3d::same(2, 3, (1, 3, 3), &mut rng());
        check_layer_gradient(Box::new(c), &[2, 2, 1, 5, 5], 0.0, 1e-6, 1e-6);
    }

    #[test]
    fn gradcheck_3d_kernel() {
        let c = Conv3d::same(1, 2, (3, 3, 3), &mut rng());
        check_layer_gradient(Box::new(c), &[1, 1, 4, 4, 4], 0.0, 1e-6, 1e-6);
    }

    #[test]
    fn gradcheck_strided() {
        let c = Conv3d::new(2, 2, (1, 3, 3), (1, 2, 2), (0, 1, 1), &mut rng());
        check_layer_gradient(Box::new(c), &[1, 2, 1, 6, 6], 0.0, 1e-6, 1e-6);
    }

    #[test]
    fn gradcheck_1x1() {
        let c = Conv3d::new(3, 2, (1, 1, 1), (1, 1, 1), (0, 0, 0), &mut rng());
        check_layer_gradient(Box::new(c), &[2, 3, 1, 3, 3], 0.0, 1e-6, 1e-6);
    }
}
