//! From-scratch CNN framework for MGDiffNet.
//!
//! The paper trains a fully convolutional U-Net (§3.1.2, §4.1: depth 3,
//! 16 base filters doubling with depth, batch normalization, LeakyReLU,
//! Sigmoid head, Adam) whose weights are resolution-agnostic — the property
//! the whole multigrid training scheme rests on. This crate implements that
//! network and everything under it with hand-written, finite-difference-
//! checked backpropagation:
//!
//! - [`conv::Conv3d`] / [`convt::ConvTranspose3d`] — convolutions with
//!   arbitrary per-axis kernel/stride/padding; 2D problems use a unit depth
//!   axis and `(1, k, k)` kernels so both dimensionalities share one code
//!   path. Each layer runs on a selectable [`lowering::ConvBackend`]: the
//!   default `Gemm` backend lowers **all four passes** (conv and
//!   transpose-conv, forward and backward) onto the single blocked matmul
//!   kernel of [`mgd_tensor::matmul`] via the shared im2col/col2im pair in
//!   [`lowering`] — 4–14× faster than the scalar loops on paper-scale
//!   grids — while `Direct` keeps the original sliding-window kernels as a
//!   property-tested, bisectable reference;
//! - [`norm::BatchNorm`], [`pool::MaxPool3d`], [`act::LeakyReLU`],
//!   [`act::Sigmoid`];
//! - [`unet::UNet`] — the MGDiffNet architecture, including
//!   [`unet::UNet::deepened`] for the paper's architectural-adaptation study
//!   (§4.1.2);
//! - [`model::Model`] / [`optim::Optimizer`] — the traits the MGDiffNet
//!   trainers and the `SolverEngine` facade are generic over, so
//!   architectures and update rules are swappable (`Box<dyn Model>` /
//!   `Box<dyn Optimizer>` are themselves implementations);
//! - [`optim::Adam`] / [`optim::Sgd`] and flat parameter/gradient views for
//!   the distributed all-reduce;
//! - [`spatial`] — slab-decomposed (spatial model-parallel) inference:
//!   the U-Net forward over per-rank z-slabs with tagged halo-plane
//!   exchange before every stencil convolution, bitwise identical to the
//!   serial forward at any rank count;
//! - [`workspace::Workspace`] + the `&self` `infer` methods on every layer,
//!   [`unet::UNet::infer`] and the [`model::InferModel`] trait — the
//!   lock-free serving path: all transient buffers live in a caller-owned
//!   workspace, so one model behind an `Arc` answers concurrent predictions
//!   bitwise identically to the exclusive `forward(x, false)` path;
//! - [`gradcheck`] — the finite-difference harness every layer is verified
//!   against;
//! - [`io`] — serde-based weight checkpointing.
//!
//! All activations are NCDHW `(batch, channel, depth, height, width)`
//! [`mgd_tensor::Tensor`]s in `f64`.

pub mod act;
pub mod conv;
pub mod convt;
pub mod gradcheck;
pub mod io;
pub mod layer;
pub mod lowering;
pub mod model;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod spatial;
pub mod unet;
mod util;
pub mod workspace;

pub use act::{LeakyReLU, Sigmoid};
pub use conv::{prepack_stats, Conv3d};
pub use convt::ConvTranspose3d;
pub use io::{Checkpoint, WeightSnapshot};
pub use layer::Layer;
pub use lowering::ConvBackend;
pub use model::{InferModel, Model, SlabModel};
pub use norm::BatchNorm;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use pool::MaxPool3d;
pub use spatial::{
    activation_peak_elems, activation_peak_elems_opts, infer_slab, measured_peak_elems,
    predict_slab, reset_measured_peak, SlabOpts, SplitAxis,
};
pub use unet::{UNet, UNetConfig};
pub use workspace::Workspace;
