//! Finite-difference gradient verification harness.
//!
//! Every layer in this crate is checked against central differences through
//! a random linear probe loss `L(y) = Σ w ⊙ y`, for which `∂L/∂y = w` is
//! exact. The harness perturbs (a) every input entry and (b) every learnable
//! parameter, so both `backward`'s returned input gradient and its
//! accumulated parameter gradients are covered.

use crate::layer::Layer;
use crate::param::Param;
use mgd_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Central-difference step for smooth, well-conditioned layers.
pub const FD_EPS: f64 = 1e-6;
/// Acceptance tolerance paired with [`FD_EPS`].
pub const FD_TOL: f64 = 1e-6;
/// Smaller step for piecewise-linear layers (max-pool): keeps both probes
/// on the same linear piece so the central difference stays exact.
pub const FD_EPS_FINE: f64 = 1e-7;
/// Tolerance for layers whose forward mixes batch statistics into every
/// output (batch norm) — the probe loss couples all entries, amplifying
/// round-off in the finite difference.
pub const FD_TOL_STAT: f64 = 1e-5;
/// Step for deep composite networks, where per-layer truncation error
/// accumulates and a larger step keeps the difference above round-off.
pub const FD_EPS_COARSE: f64 = 1e-5;
/// Tolerance paired with [`FD_EPS_COARSE`].
pub const FD_TOL_COARSE: f64 = 1e-4;

/// Deterministic probe weights for the scalar loss.
fn probe(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(shape.to_vec(), -1.0, 1.0, &mut rng)
}

fn loss(y: &Tensor, w: &Tensor) -> f64 {
    y.dot(w)
}

/// Checks input and parameter gradients of `layer` on a random input of
/// `x_dims` (entries offset by `x_offset`, useful to avoid kinks).
///
/// Panics with a descriptive message if any analytic/numeric pair differs
/// by more than `tol` absolutely (for |fd| ≤ 1) or relatively.
pub fn check_layer_gradient(
    mut layer: Box<dyn Layer>,
    x_dims: &[usize],
    x_offset: f64,
    eps: f64,
    tol: f64,
) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut x = Tensor::rand_uniform(x_dims.to_vec(), -0.5, 0.5, &mut rng);
    x.map_inplace(|v| v + x_offset);

    // Analytic pass.
    let y = layer.forward(&x, true);
    let w = probe(y.dims(), 7);
    let gx = layer.backward(&w);
    assert_eq!(gx.shape(), x.shape(), "input-grad shape mismatch");

    // (a) Input gradient: check a strided subset (cost control) plus ends.
    let step = (x.len() / 64).max(1);
    for i in (0..x.len()).step_by(step).chain([x.len() - 1]) {
        let mut xp = x.clone();
        xp[i] += eps;
        let mut xm = x.clone();
        xm[i] -= eps;
        let lp = loss(&layer.forward(&xp, true), &w);
        let lm = loss(&layer.forward(&xm, true), &w);
        let fd = (lp - lm) / (2.0 * eps);
        let ana = gx[i];
        let denom = fd.abs().max(1.0);
        assert!(
            (ana - fd).abs() / denom < tol,
            "{}: input grad [{i}] analytic {ana} vs fd {fd}",
            layer.name()
        );
    }

    // (b) Parameter gradients: re-run analytic pass to capture fresh grads.
    for p in layer.params() {
        p.zero_grad();
    }
    let y = layer.forward(&x, true);
    let w = probe(y.dims(), 7);
    let _ = layer.backward(&w);
    let grads: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();
    let n_params = grads.len();
    for pi in 0..n_params {
        let len = grads[pi].len();
        let pstep = (len / 32).max(1);
        for i in (0..len).step_by(pstep).chain([len - 1]) {
            perturb_param(&mut layer, pi, i, eps);
            let lp = loss(&layer.forward(&x, true), &w);
            perturb_param(&mut layer, pi, i, -2.0 * eps);
            let lm = loss(&layer.forward(&x, true), &w);
            perturb_param(&mut layer, pi, i, eps);
            let fd = (lp - lm) / (2.0 * eps);
            let ana = grads[pi][i];
            let denom = fd.abs().max(1.0);
            assert!(
                (ana - fd).abs() / denom < tol,
                "{}: param {pi} grad [{i}] analytic {ana} vs fd {fd}",
                layer.name()
            );
        }
    }
}

fn perturb_param(layer: &mut Box<dyn Layer>, pi: usize, i: usize, delta: f64) {
    let mut params: Vec<&mut Param> = layer.params();
    params[pi].data[i] += delta;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A layer with a deliberately wrong backward, to prove the harness
    /// actually catches errors.
    struct BrokenScale;

    impl Layer for BrokenScale {
        fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
            x.map(|v| 3.0 * v)
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.map(|g| 2.0 * g) // wrong: should be 3.0
        }
        fn name(&self) -> String {
            "BrokenScale".into()
        }
    }

    #[test]
    #[should_panic(expected = "input grad")]
    fn harness_detects_wrong_backward() {
        check_layer_gradient(Box::new(BrokenScale), &[1, 1, 1, 2, 2], 0.0, FD_EPS, FD_TOL);
    }
}
