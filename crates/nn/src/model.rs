//! The [`Model`] abstraction: what a trainable solver network must provide.
//!
//! The trainers and the `SolverEngine` facade in `mgdiffnet` are generic
//! over this trait instead of the concrete [`UNet`], so alternative
//! architectures (different backbones, learned multigrid operators per
//! *Neural Multigrid Architectures*, quantized inference networks) plug in
//! without touching the training loops. A `Box<dyn Model>` is itself a
//! `Model`, which is what lets the engine hold an architecture chosen at
//! runtime while the trainers stay statically generic.

use crate::layer::Layer;
use crate::spatial::SlabOpts;
use crate::unet::UNet;
use crate::workspace::Workspace;
use mgd_dist::Comm;
use mgd_tensor::{Element, Tensor};
use std::sync::Arc;

/// A read-only, thread-shareable view of a trained model, generic over the
/// inference element type (default `f64`).
///
/// This is the serving-side counterpart of [`Model`]: `infer` takes `&self`
/// and keeps every transient buffer in the caller's [`Workspace`], so one
/// `Arc<dyn InferModel>` can answer predictions from any number of threads
/// simultaneously — the contract the `EngineSnapshot` hot-swap publishing
/// in `mgdiffnet` is built on. `f64` implementations must be bitwise
/// identical to the exclusive `forward(x, false)` path of the same weights;
/// an `InferModel<f32>` view runs the same kernels at single precision
/// (one rounding away from the `f64` masters, half the memory traffic).
pub trait InferModel<E: Element = f64>: Send + Sync {
    /// Inference forward pass with caller-owned scratch.
    fn infer(&self, x: &Tensor<E>, ws: &mut Workspace<E>) -> Tensor<E>;
}

impl InferModel for UNet {
    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        UNet::infer(self, x, ws)
    }
}

impl InferModel<f32> for UNet<f32> {
    fn infer(&self, x: &Tensor<f32>, ws: &mut Workspace<f32>) -> Tensor<f32> {
        UNet::infer(self, x, ws)
    }
}

/// A read-only, thread-shareable view of a model for **slab-decomposed**
/// serving, generic over the inference element type.
///
/// The spatial counterpart of [`InferModel`]: `infer_slab` takes `&self`
/// and caller-owned scratch, so one `Arc<dyn SlabModel>` can be shared by
/// every rank of a persistent pool — no per-request replicas, no mutex.
/// Obtained from [`Model::share_slab`] / [`Model::share_slab_f32`], which
/// also prepack the stencil GEMM panels once so every slab, layer, and
/// request reuses them.
pub trait SlabModel<E: Element = f64>: Send + Sync {
    /// Slab-size alignment along the split axis (the pool-alignment rule);
    /// never zero for a type implementing this trait.
    fn spatial_align(&self) -> usize;

    /// Slab-decomposed inference forward (collective across `comm`); see
    /// [`crate::spatial::infer_slab`].
    fn infer_slab(
        &self,
        slab: &Tensor<E>,
        comm: &dyn Comm,
        ws: &mut Workspace<E>,
        opts: &SlabOpts,
    ) -> Tensor<E>;
}

impl SlabModel for UNet {
    fn spatial_align(&self) -> usize {
        1 << self.cfg.depth
    }

    fn infer_slab(
        &self,
        slab: &Tensor,
        comm: &dyn Comm,
        ws: &mut Workspace,
        opts: &SlabOpts,
    ) -> Tensor {
        crate::spatial::infer_slab(self, slab, comm, ws, opts)
    }
}

impl SlabModel<f32> for UNet<f32> {
    fn spatial_align(&self) -> usize {
        1 << self.cfg.depth
    }

    fn infer_slab(
        &self,
        slab: &Tensor<f32>,
        comm: &dyn Comm,
        ws: &mut Workspace<f32>,
        opts: &SlabOpts,
    ) -> Tensor<f32> {
        crate::spatial::infer_slab(self, slab, comm, ws, opts)
    }
}

/// A trainable network usable by the MGDiffNet trainers.
///
/// Everything gradient-related comes from [`Layer`] (forward/backward,
/// parameter and buffer access); `Model` adds the solver-level contract:
/// inference without training-time side effects and optional capacity
/// growth on multigrid refinement (§4.1.2 architectural adaptation).
pub trait Model: Layer {
    /// Inference forward pass (no batch-statistic updates, no activation
    /// caching beyond what the layer keeps anyway).
    fn predict(&mut self, x: &Tensor) -> Tensor {
        self.forward(x, false)
    }

    /// Grows the model's capacity when multigrid training first moves to a
    /// finer level (the paper's architectural adaptation). Returns whether
    /// anything changed; the default is a fixed architecture.
    fn deepen(&mut self) -> bool {
        false
    }

    /// Deep copy of this model as a fresh boxed trait object.
    ///
    /// Data-parallel training replicates the model once per rank through
    /// this hook (each in-process worker owns its replica; a broadcast from
    /// rank 0 then makes the weights bitwise identical). For a `Clone`
    /// architecture the implementation is one line:
    /// `Box::new(self.clone())`.
    fn clone_model(&self) -> Box<dyn Model>;

    /// Slab-size alignment this model requires along the split axis for
    /// spatial (slab-decomposed) inference, or `0` when the architecture
    /// does not support it. The U-Net returns `2^depth` — the
    /// pool-alignment rule of [`crate::spatial`].
    fn spatial_align(&self) -> usize {
        0
    }

    /// Slab-decomposed inference forward: `slab` is this rank's contiguous
    /// slab of the input along the split axis, and every rank of `comm`
    /// calls this collectively. Returns the owned output slab, or `None`
    /// when the architecture does not support spatial decomposition
    /// ([`Self::spatial_align`] `== 0`).
    fn predict_slab(&mut self, slab: &Tensor, comm: &dyn Comm) -> Option<Tensor> {
        let _ = (slab, comm);
        None
    }

    /// Exports a read-only, thread-shareable copy of this model's current
    /// weights for concurrent serving, or `None` when the architecture has
    /// no `&self` inference path (such models are still servable, but each
    /// call serializes on an exclusive replica). The copy is a deep
    /// snapshot: later training steps on `self` do not affect it.
    fn share(&self) -> Option<Arc<dyn InferModel>> {
        None
    }

    /// Exports a **single-precision** read-only serving view: the current
    /// `f64` master weights converted once to `f32`, or `None` when the
    /// architecture has no `f32` inference path. Serving through this view
    /// halves weight/activation memory traffic; outputs differ from the
    /// `f64` path by accumulated rounding only (see the `Element`
    /// equivalence tolerances).
    fn share_f32(&self) -> Option<Arc<dyn InferModel<f32>>> {
        None
    }

    /// Exports a read-only, thread-shareable **slab-inference** snapshot
    /// (deep copy with GEMM weight panels prepacked), or `None` when the
    /// architecture does not support spatial decomposition.
    fn share_slab(&self) -> Option<Arc<dyn SlabModel>> {
        None
    }

    /// Single-precision counterpart of [`Self::share_slab`]: the `f64`
    /// masters converted once to `f32` and prepacked.
    fn share_slab_f32(&self) -> Option<Arc<dyn SlabModel<f32>>> {
        None
    }
}

impl Model for UNet {
    fn deepen(&mut self) -> bool {
        *self = self.deepened();
        true
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn spatial_align(&self) -> usize {
        1 << self.cfg.depth
    }

    fn predict_slab(&mut self, slab: &Tensor, comm: &dyn Comm) -> Option<Tensor> {
        Some(crate::spatial::predict_slab(self, slab, comm))
    }

    fn share(&self) -> Option<Arc<dyn InferModel>> {
        Some(Arc::new(self.clone()))
    }

    fn share_f32(&self) -> Option<Arc<dyn InferModel<f32>>> {
        Some(Arc::new(self.to_f32()))
    }

    fn share_slab(&self) -> Option<Arc<dyn SlabModel>> {
        let mut snap = self.clone();
        snap.prepack();
        Some(Arc::new(snap))
    }

    fn share_slab_f32(&self) -> Option<Arc<dyn SlabModel<f32>>> {
        let mut snap = self.to_f32();
        snap.prepack();
        Some(Arc::new(snap))
    }
}

impl Layer for Box<dyn Model> {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        (**self).forward(x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        (**self).backward(grad_out)
    }

    fn params(&mut self) -> Vec<&mut crate::param::Param> {
        (**self).params()
    }

    fn buffers(&mut self) -> Vec<&mut Vec<f64>> {
        (**self).buffers()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl Model for Box<dyn Model> {
    fn predict(&mut self, x: &Tensor) -> Tensor {
        (**self).predict(x)
    }

    fn deepen(&mut self) -> bool {
        (**self).deepen()
    }

    fn clone_model(&self) -> Box<dyn Model> {
        (**self).clone_model()
    }

    fn spatial_align(&self) -> usize {
        (**self).spatial_align()
    }

    fn predict_slab(&mut self, slab: &Tensor, comm: &dyn Comm) -> Option<Tensor> {
        (**self).predict_slab(slab, comm)
    }

    fn share(&self) -> Option<Arc<dyn InferModel>> {
        (**self).share()
    }

    fn share_f32(&self) -> Option<Arc<dyn InferModel<f32>>> {
        (**self).share_f32()
    }

    fn share_slab(&self) -> Option<Arc<dyn SlabModel>> {
        (**self).share_slab()
    }

    fn share_slab_f32(&self) -> Option<Arc<dyn SlabModel<f32>>> {
        (**self).share_slab_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::UNetConfig;

    fn tiny() -> UNet {
        UNet::new(UNetConfig {
            depth: 1,
            base_filters: 2,
            two_d: true,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn unet_is_a_model() {
        fn takes_model<M: Model>(m: &mut M) -> Tensor {
            m.predict(&Tensor::zeros([1, 1, 1, 4, 4]))
        }
        let mut net = tiny();
        let y = takes_model(&mut net);
        assert_eq!(y.dims(), &[1, 1, 1, 4, 4]);
    }

    #[test]
    fn boxed_model_delegates() {
        let mut boxed: Box<dyn Model> = Box::new(tiny());
        let y = boxed.predict(&Tensor::zeros([1, 1, 1, 4, 4]));
        assert_eq!(y.dims(), &[1, 1, 1, 4, 4]);
        assert!(boxed.name().starts_with("UNet"));
        assert!(boxed.deepen(), "UNet adaptation grows the net");
        // Depth 2 now: needs resolutions divisible by 4.
        let y = boxed.predict(&Tensor::zeros([1, 1, 1, 8, 8]));
        assert_eq!(y.dims(), &[1, 1, 1, 8, 8]);
    }

    #[test]
    fn deepen_matches_deepened() {
        let mut a = tiny();
        let b = a.deepened();
        assert!(Model::deepen(&mut a));
        assert_eq!(a.cfg, b.cfg);
    }
}
