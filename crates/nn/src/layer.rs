//! The layer abstraction shared by all network components.

use crate::param::Param;
use mgd_tensor::{Element, Tensor};

/// A differentiable network component with cached-activation backprop.
///
/// `forward` caches whatever the matching `backward` needs; calling
/// `backward` without a preceding `forward` panics. Gradients *accumulate*
/// into [`Param::grad`]; callers zero them between optimizer steps.
pub trait Layer: Send {
    /// Computes the layer output. `train` toggles training-time behaviour
    /// (batch statistics, activation caching).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (gradient w.r.t. the last forward output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to learnable parameters (empty for stateless layers).
    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Mutable access to non-learnable persistent state (e.g. batch-norm
    /// running statistics) that checkpoints must carry.
    fn buffers(&mut self) -> Vec<&mut Vec<f64>> {
        Vec::new()
    }

    /// Human-readable identifier for debugging and checkpoints.
    fn name(&self) -> String;

    /// Total learnable scalar count.
    fn num_params(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Per-axis spatial triple (depth, height, width) used for kernels,
/// strides, paddings and pool windows.
pub type Triple = (usize, usize, usize);

/// NCDHW dimensions of an activation tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dims5 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Depth.
    pub d: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Dims5 {
    /// Extracts NCDHW dims, panicking on non-rank-5 tensors.
    pub fn of<E: Element>(t: &Tensor<E>) -> Self {
        match *t.dims() {
            [n, c, d, h, w] => Dims5 { n, c, d, h, w },
            _ => panic!("expected NCDHW tensor, got shape {}", t.shape()),
        }
    }

    /// Spatial volume `d*h*w`.
    pub fn vol(&self) -> usize {
        self.d * self.h * self.w
    }

    /// Linear offset of `(n, c, d, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> usize {
        (((n * self.c + c) * self.d + d) * self.h + h) * self.w + w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims5_roundtrip() {
        let t: Tensor = Tensor::zeros([2, 3, 4, 5, 6]);
        let d = Dims5::of(&t);
        assert_eq!((d.n, d.c, d.d, d.h, d.w), (2, 3, 4, 5, 6));
        assert_eq!(d.vol(), 120);
        assert_eq!(d.at(1, 2, 3, 4, 5), t.shape().offset(&[1, 2, 3, 4, 5]));
    }

    #[test]
    #[should_panic(expected = "NCDHW")]
    fn dims5_wrong_rank_panics() {
        let _ = Dims5::of(&Tensor::<f64>::zeros([2, 3]));
    }
}
