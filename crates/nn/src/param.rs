//! Learnable parameters and initialization.

use mgd_tensor::{Element, Shape, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A learnable tensor paired with its gradient accumulator.
///
/// Training always instantiates this at the default `f64`; the `f32`
/// instantiation only carries converted copies of master weights for the
/// single-precision serving path (its `grad` stays empty of purpose there).
#[derive(Clone, Debug)]
pub struct Param<E: Element = f64> {
    /// Current value.
    pub data: Tensor<E>,
    /// Accumulated gradient (same shape as `data`).
    pub grad: Tensor<E>,
}

impl<E: Element> Serialize for Param<E> {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("data"), self.data.serialize_value()),
            (String::from("grad"), self.grad.serialize_value()),
        ])
    }
}

impl<E: Element> Deserialize for Param<E> {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("missing field `{name}` in Param")))
        };
        Ok(Param {
            data: Tensor::deserialize_value(field("data")?)?,
            grad: Tensor::deserialize_value(field("grad")?)?,
        })
    }
}

impl<E: Element> Param<E> {
    /// Zero-initialized parameter.
    pub fn zeros<S: Into<Shape> + Clone>(shape: S) -> Self {
        Param {
            data: Tensor::zeros(shape.clone()),
            grad: Tensor::zeros(shape),
        }
    }

    /// Parameter with the given value and a zero gradient.
    pub fn new(data: Tensor<E>) -> Self {
        let grad = Tensor::zeros(data.shape().clone());
        Param { data, grad }
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for empty parameters (never expected in practice).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(E::ZERO);
    }

    /// Converts the parameter value to another element type (through `f64`);
    /// the gradient accumulator of the copy starts at zero.
    pub fn cast_as<T: Element>(&self) -> Param<T> {
        Param::new(self.data.cast())
    }
}

impl Param {
    /// Kaiming-uniform initialization for a convolution weight with
    /// `fan_in` inputs per output (gain for leaky-ReLU networks).
    /// Initialization draws stay in `f64` master precision.
    pub fn kaiming<S: Into<Shape>, R: Rng>(shape: S, fan_in: usize, rng: &mut R) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        let data = Tensor::rand_uniform(shape, -bound, bound, rng);
        Param::new(data)
    }
}

/// Total scalar count across parameters.
pub fn total_len(params: &[&mut Param]) -> usize {
    params.iter().map(|p| p.len()).sum()
}

/// Copies all gradients into one flat buffer (all-reduce staging).
pub fn flatten_grads(params: &[&mut Param], out: &mut Vec<f64>) {
    out.clear();
    for p in params {
        out.extend_from_slice(p.grad.as_slice());
    }
}

/// Writes a flat buffer back into the per-parameter gradients.
pub fn unflatten_grads(params: &mut [&mut Param], flat: &[f64]) {
    let mut off = 0;
    for p in params.iter_mut() {
        let n = p.grad.len();
        p.grad.as_mut_slice().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
    assert_eq!(off, flat.len(), "flat gradient length mismatch");
}

/// Copies all parameter values into one flat buffer (broadcast staging).
pub fn flatten_params(params: &[&mut Param], out: &mut Vec<f64>) {
    out.clear();
    for p in params {
        out.extend_from_slice(p.data.as_slice());
    }
}

/// Writes a flat buffer back into the parameter values.
pub fn unflatten_params(params: &mut [&mut Param], flat: &[f64]) {
    let mut off = 0;
    for p in params.iter_mut() {
        let n = p.data.len();
        p.data.as_mut_slice().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
    assert_eq!(off, flat.len(), "flat parameter length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::kaiming([8, 4, 3, 3, 3], 4 * 27, &mut rng);
        let bound = (6.0f64 / (4.0 * 27.0)).sqrt();
        assert!(p.data.as_slice().iter().all(|&w| w.abs() <= bound));
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut a = Param::new(Tensor::from_vec([2], vec![1.0, 2.0]));
        let mut b = Param::new(Tensor::from_vec([3], vec![3.0, 4.0, 5.0]));
        a.grad = Tensor::from_vec([2], vec![0.1, 0.2]);
        b.grad = Tensor::from_vec([3], vec![0.3, 0.4, 0.5]);
        let mut params = vec![&mut a, &mut b];
        let mut flat = Vec::new();
        flatten_grads(&params, &mut flat);
        assert_eq!(flat, vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        let doubled: Vec<f64> = flat.iter().map(|x| x * 2.0).collect();
        unflatten_grads(&mut params, &doubled);
        assert_eq!(a.grad.as_slice(), &[0.2, 0.4]);
        assert_eq!(b.grad.as_slice(), &[0.6, 0.8, 1.0]);
    }

    #[test]
    fn zero_grad() {
        let mut p: Param = Param::new(Tensor::ones([4]));
        p.grad = Tensor::ones([4]);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }
}
