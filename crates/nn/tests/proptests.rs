//! Property-based tests for the CNN framework.

use mgd_nn::unet::{concat_channels, split_channels};
use mgd_nn::{Adam, Conv3d, Layer, MaxPool3d, Optimizer, Param, Sigmoid, UNet, UNetConfig};
use mgd_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Same-padding convolutions preserve spatial dims for any channel
    /// combination and input size.
    #[test]
    fn conv_same_preserves_dims(
        cin in 1usize..4, cout in 1usize..4,
        h in 3usize..10, w in 3usize..10, seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv3d::same(cin, cout, (1, 3, 3), &mut rng);
        let x = Tensor::rand_uniform([1, cin, 1, h, w], -1.0, 1.0, &mut rng);
        let y = conv.forward(&x, false);
        prop_assert_eq!(y.dims(), &[1, cout, 1, h, w]);
    }

    /// Max-pool backward conserves the total gradient mass.
    #[test]
    fn pool_backward_conserves_gradient(h in 1usize..5, w in 1usize..5, seed in 0u64..100) {
        let (h, w) = (h * 2, w * 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = MaxPool3d::new((1, 2, 2));
        let x = Tensor::rand_uniform([1, 1, 1, h, w], -1.0, 1.0, &mut rng);
        let y = pool.forward(&x, true);
        let g = Tensor::rand_uniform(y.dims().to_vec(), -1.0, 1.0, &mut rng);
        let gx = pool.backward(&g);
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-10);
    }

    /// Sigmoid output is strictly inside (0, 1) for inputs where f64 can
    /// represent that (|x| ≲ 36; beyond, it rounds to exactly 0/1), and is
    /// monotone.
    #[test]
    fn sigmoid_range_and_monotonicity(a in -30.0..30.0f64, b in -30.0..30.0f64) {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec([1, 1, 1, 1, 2], vec![a, b]);
        let y = s.forward(&x, false);
        prop_assert!(y[0] > 0.0 && y[0] < 1.0);
        prop_assert!(y[1] > 0.0 && y[1] < 1.0);
        if a < b {
            prop_assert!(y[0] <= y[1]);
        }
    }

    /// concat/split roundtrip for arbitrary channel splits.
    #[test]
    fn concat_split_roundtrip(ca in 1usize..5, cb in 1usize..5, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([2, ca, 1, 3, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([2, cb, 1, 3, 3], -1.0, 1.0, &mut rng);
        let cat = concat_channels(&a, &b);
        let (a2, b2) = split_channels(&cat, ca);
        prop_assert_eq!(a2.as_slice(), a.as_slice());
        prop_assert_eq!(b2.as_slice(), b.as_slice());
    }

    /// Adam converges on any 1D positive quadratic.
    #[test]
    fn adam_minimizes_quadratic(target in -5.0..5.0f64, curvature in 0.5..4.0f64) {
        let mut p = Param::new(Tensor::from_vec([1], vec![0.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..800 {
            let g = 2.0 * curvature * (p.data[0] - target);
            p.grad = Tensor::from_vec([1], vec![g]);
            opt.step(&mut [&mut p]);
        }
        prop_assert!((p.data[0] - target).abs() < 1e-2, "{} vs {}", p.data[0], target);
    }

    /// The U-Net accepts every resolution divisible by 2^depth and
    /// produces outputs in (0, 1) with the sigmoid head.
    #[test]
    fn unet_resolution_sweep(k in 1usize..4, seed in 0u64..20) {
        let cfg = UNetConfig { two_d: true, depth: 2, base_filters: 2, seed, ..Default::default() };
        let mut net = UNet::new(cfg);
        let m = 4 << k; // 8, 16, 32
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform([1, 1, 1, m, m], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, false);
        prop_assert_eq!(y.dims(), &[1, 1, 1, m, m]);
        prop_assert!(y.as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    /// Gradient accumulation: two backward passes double the parameter
    /// gradient (callers rely on accumulate-then-zero semantics).
    #[test]
    fn gradients_accumulate(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv3d::same(1, 1, (1, 3, 3), &mut rng);
        let x = Tensor::rand_uniform([1, 1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let g = Tensor::rand_uniform([1, 1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&g);
        let once = conv.weight.grad.clone();
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&g);
        for i in 0..once.len() {
            prop_assert!((conv.weight.grad[i] - 2.0 * once[i]).abs() < 1e-9);
        }
    }
}
