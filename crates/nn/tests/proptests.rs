//! Property-based tests for the CNN framework.

use mgd_dist::{carve_planes, launch_with, SlabPartition};
use mgd_nn::layer::Dims5;
use mgd_nn::unet::{concat_channels, split_channels};
use mgd_nn::{
    predict_slab, Adam, Conv3d, ConvBackend, ConvTranspose3d, Layer, MaxPool3d, Optimizer, Param,
    Sigmoid, SplitAxis, UNet, UNetConfig,
};
use mgd_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forward + backward a layer pair (identical weights, different backends)
/// on the same input/cotangent and assert every output and accumulated
/// gradient agrees to ≤ `tol` relative L2 error.
fn assert_backends_equivalent<L: Layer + Clone>(mut direct: L, mut gemm: L, x: &Tensor, tol: f64) {
    let mut rng = StdRng::seed_from_u64(0xE0);
    let yd = direct.forward(x, true);
    let yg = gemm.forward(x, true);
    prop_assert_eq!(yd.dims(), yg.dims());
    prop_assert!(
        yd.rel_l2_error(&yg) < tol,
        "forward diverges: {}",
        yd.rel_l2_error(&yg)
    );
    let g = Tensor::rand_uniform(yd.dims().to_vec(), -1.0, 1.0, &mut rng);
    let gxd = direct.backward(&g);
    let gxg = gemm.backward(&g);
    prop_assert!(
        gxd.rel_l2_error(&gxg) < tol,
        "input grad diverges: {}",
        gxd.rel_l2_error(&gxg)
    );
    let pd: Vec<Tensor> = direct.params().iter().map(|p| p.grad.clone()).collect();
    let pg: Vec<Tensor> = gemm.params().iter().map(|p| p.grad.clone()).collect();
    for (i, (a, b)) in pd.iter().zip(&pg).enumerate() {
        prop_assert!(
            a.rel_l2_error(b) < tol,
            "param {i} grad diverges: {}",
            a.rel_l2_error(b)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Same-padding convolutions preserve spatial dims for any channel
    /// combination and input size.
    #[test]
    fn conv_same_preserves_dims(
        cin in 1usize..4, cout in 1usize..4,
        h in 3usize..10, w in 3usize..10, seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv3d::same(cin, cout, (1, 3, 3), &mut rng);
        let x = Tensor::rand_uniform([1, cin, 1, h, w], -1.0, 1.0, &mut rng);
        let y = conv.forward(&x, false);
        prop_assert_eq!(y.dims(), &[1, cout, 1, h, w]);
    }

    /// Max-pool backward conserves the total gradient mass.
    #[test]
    fn pool_backward_conserves_gradient(h in 1usize..5, w in 1usize..5, seed in 0u64..100) {
        let (h, w) = (h * 2, w * 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = MaxPool3d::new((1, 2, 2));
        let x = Tensor::rand_uniform([1, 1, 1, h, w], -1.0, 1.0, &mut rng);
        let y = pool.forward(&x, true);
        let g = Tensor::rand_uniform(y.dims().to_vec(), -1.0, 1.0, &mut rng);
        let gx = pool.backward(&g);
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-10);
    }

    /// Sigmoid output is strictly inside (0, 1) for inputs where f64 can
    /// represent that (|x| ≲ 36; beyond, it rounds to exactly 0/1), and is
    /// monotone.
    #[test]
    fn sigmoid_range_and_monotonicity(a in -30.0..30.0f64, b in -30.0..30.0f64) {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec([1, 1, 1, 1, 2], vec![a, b]);
        let y = s.forward(&x, false);
        prop_assert!(y[0] > 0.0 && y[0] < 1.0);
        prop_assert!(y[1] > 0.0 && y[1] < 1.0);
        if a < b {
            prop_assert!(y[0] <= y[1]);
        }
    }

    /// concat/split roundtrip for arbitrary channel splits.
    #[test]
    fn concat_split_roundtrip(ca in 1usize..5, cb in 1usize..5, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([2, ca, 1, 3, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([2, cb, 1, 3, 3], -1.0, 1.0, &mut rng);
        let cat = concat_channels(&a, &b);
        let (a2, b2) = split_channels(&cat, ca);
        prop_assert_eq!(a2.as_slice(), a.as_slice());
        prop_assert_eq!(b2.as_slice(), b.as_slice());
    }

    /// Adam converges on any 1D positive quadratic.
    #[test]
    fn adam_minimizes_quadratic(target in -5.0..5.0f64, curvature in 0.5..4.0f64) {
        let mut p = Param::new(Tensor::from_vec([1], vec![0.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..800 {
            let g = 2.0 * curvature * (p.data[0] - target);
            p.grad = Tensor::from_vec([1], vec![g]);
            opt.step(&mut [&mut p]);
        }
        prop_assert!((p.data[0] - target).abs() < 1e-2, "{} vs {}", p.data[0], target);
    }

    /// The U-Net accepts every resolution divisible by 2^depth and
    /// produces outputs in (0, 1) with the sigmoid head.
    #[test]
    fn unet_resolution_sweep(k in 1usize..4, seed in 0u64..20) {
        let cfg = UNetConfig { two_d: true, depth: 2, base_filters: 2, seed, ..Default::default() };
        let mut net = UNet::new(cfg);
        let m = 4 << k; // 8, 16, 32
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform([1, 1, 1, m, m], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, false);
        prop_assert_eq!(y.dims(), &[1, 1, 1, m, m]);
        prop_assert!(y.as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    /// The GEMM lowering computes the same convolution as the direct
    /// sliding-window kernels — forward and all three gradients — across
    /// random channels, kernels (incl. 2D `(1,k,k)`), strides and paddings.
    #[test]
    fn conv_gemm_matches_direct(
        n in 1usize..3, cin in 1usize..4, cout in 1usize..4,
        kd in 1usize..4, khw in 1usize..4,
        sd in 1usize..3, shw in 1usize..3,
        pd in 0usize..2, phw in 0usize..2,
        extra in 0usize..4, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Spatial extents large enough for the kernel at this padding.
        let d = (kd.saturating_sub(2 * pd)).max(1) + extra;
        let hw = (khw.saturating_sub(2 * phw)).max(1) + extra + 1;
        let direct = Conv3d::new(cin, cout, (kd, khw, khw), (sd, shw, shw), (pd, phw, phw), &mut rng)
            .with_backend(ConvBackend::Direct);
        let gemm = direct.clone().with_backend(ConvBackend::Gemm);
        let x = Tensor::rand_uniform([n, cin, d, hw, hw], -1.0, 1.0, &mut rng);
        assert_backends_equivalent(direct, gemm, &x, 1e-10);
    }

    /// Same equivalence for the transpose convolution (the decoder path),
    /// including strided upsampling and output padding.
    #[test]
    fn convt_gemm_matches_direct(
        n in 1usize..3, cin in 1usize..4, cout in 1usize..4,
        kd in 1usize..4, khw in 1usize..4,
        sd in 1usize..3, shw in 1usize..3,
        p in 0usize..2,
        extra in 0usize..4, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // i >= 3 keeps (i-1)s + k - 2p >= 1 for every drawn combination.
        let d = 3 + extra;
        let hw = 3 + extra;
        let direct =
            ConvTranspose3d::new(cin, cout, (kd, khw, khw), (sd, shw, shw), (p, p, p), &mut rng)
                .with_backend(ConvBackend::Direct);
        let gemm = direct.clone().with_backend(ConvBackend::Gemm);
        let x = Tensor::rand_uniform([n, cin, d, hw, hw], -1.0, 1.0, &mut rng);
        assert_backends_equivalent(direct, gemm, &x, 1e-10);
    }

    /// A whole U-Net built on the Gemm backend matches the Direct build
    /// weight-for-weight on forward prediction.
    #[test]
    fn unet_backends_agree(seed in 0u64..20) {
        let base = UNetConfig {
            two_d: true, depth: 2, base_filters: 2, seed,
            conv_backend: ConvBackend::Direct,
            ..Default::default()
        };
        let mut direct = UNet::new(base);
        let mut gemm = UNet::new(UNetConfig { conv_backend: ConvBackend::Gemm, ..base });
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let yd = direct.forward(&x, false);
        let yg = gemm.forward(&x, false);
        prop_assert!(yd.rel_l2_error(&yg) < 1e-12);
    }

    /// FEM-convention slab partitions disjointly cover every node plane
    /// and every element layer for any valid `(n_split, p)`.
    #[test]
    fn fem_partition_invariants(p in 1usize..8, extra in 1usize..33) {
        let n_split = p + extra; // always >= p + 1 layers
        let part = SlabPartition::new(n_split, p).unwrap();
        let mut planes = vec![0usize; n_split];
        let mut layers = vec![0usize; n_split - 1];
        for r in 0..p {
            for pl in part.owned_planes(r) {
                planes[pl] += 1;
            }
            for l in part.owned_layers(r) {
                layers[l] += 1;
            }
        }
        prop_assert!(planes.iter().all(|&c| c == 1), "planes {planes:?}");
        prop_assert!(layers.iter().all(|&c| c == 1), "layers {layers:?}");
    }

    /// Aligned slab partitions tile the axis with contiguous, non-empty
    /// slabs whose sizes are all multiples of the alignment.
    #[test]
    fn aligned_partition_invariants(p in 1usize..8, extra in 0usize..9, lg in 0u32..4) {
        let blocks = p + extra;
        let align = 1usize << lg;
        let extent = blocks * align;
        let part = SlabPartition::aligned(extent, p, align).unwrap();
        let mut covered = 0usize;
        for r in 0..p {
            let owned = part.owned_planes(r);
            prop_assert_eq!(owned.start, covered, "slabs must tile contiguously");
            prop_assert!(!owned.is_empty());
            prop_assert!(owned.len().is_multiple_of(align));
            covered = owned.end;
        }
        prop_assert_eq!(covered, extent);
        // One more rank than blocks must fail as a typed error.
        prop_assert!(SlabPartition::aligned(extent, blocks + 1, align).is_err());
    }

    /// The slab-decomposed spatial forward is bitwise identical to the
    /// serial forward for random resolutions, depths, dimensionalities and
    /// rank counts — the core guarantee of `mgd_nn::spatial`.
    #[test]
    fn spatial_forward_matches_serial_bitwise(
        depth in 1usize..3, blocks_extra in 0usize..3, p in 2usize..5,
        hw in 1usize..3, two_d_bit in 0usize..2, seed in 0u64..1000,
    ) {
        let two_d = two_d_bit == 1;
        let align = 1usize << depth;
        let extent = (p + blocks_extra) * align;
        let other = hw * align * 2;
        let dims = if two_d { [1, extent, other] } else { [extent, other.min(8), 4.max(align)] };
        let cfg = UNetConfig {
            depth, base_filters: 2, two_d, seed,
            ..Default::default()
        };
        let mut reference = UNet::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let x = Tensor::rand_uniform(vec![1, 1, dims[0], dims[1], dims[2]], -1.0, 1.0, &mut rng);
        let serial = reference.forward(&x, false);
        let d5 = Dims5::of(&x);
        let axis = reference.split_axis();
        let part = SlabPartition::aligned(axis.extent(&d5), p, align).unwrap();
        let layout = axis.layout(&d5);
        let jobs: Vec<(UNet, Tensor, std::ops::Range<usize>)> = (0..p)
            .map(|r| {
                let owned = part.owned_planes(r);
                let data = carve_planes(x.as_slice(), &layout, owned.start, owned.end);
                let sdims = match axis {
                    SplitAxis::Depth => vec![1, 1, owned.len(), dims[1], dims[2]],
                    SplitAxis::Height => vec![1, 1, 1, owned.len(), dims[2]],
                };
                (UNet::new(cfg), Tensor::from_vec(sdims, data), owned)
            })
            .collect();
        let results = launch_with(jobs, |comm, (mut replica, slab, owned)| {
            (owned, predict_slab(&mut replica, &slab, &comm))
        });
        let out_layout = axis.layout(&Dims5::of(&serial));
        for (owned, out) in results {
            let expect = carve_planes(serial.as_slice(), &out_layout, owned.start, owned.end);
            prop_assert_eq!(out.as_slice().len(), expect.len());
            for (i, (a, b)) in out.as_slice().iter().zip(&expect).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "two_d={} depth={} p={} owned={:?} elem {}: {} vs {}",
                    two_d, depth, p, owned, i, a, b
                );
            }
        }
    }

    /// The f32 convolution inference path tracks the f64 master path to
    /// the single-precision equivalence tolerance across random shapes.
    #[test]
    fn conv_f32_infer_matches_f64(
        cin in 1usize..4, cout in 1usize..4,
        h in 4usize..12, w in 4usize..12, seed in 0u64..200,
    ) {
        use mgd_nn::Workspace;
        use mgd_tensor::Element;
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv3d::same(cin, cout, (1, 3, 3), &mut rng);
        let conv32 = conv.cast_as::<f32>();
        let x = Tensor::rand_uniform([2, cin, 1, h, w], -1.0, 1.0, &mut rng);
        let y64 = conv.infer(&x, &mut Workspace::new());
        let y32 = conv32.infer(&x.cast::<f32>(), &mut Workspace::<f32>::new());
        let err = y64.rel_l2_error(&y32.cast::<f64>());
        prop_assert!(err < <f32 as Element>::EQUIV_TOL, "conv f32 drift {err}");
    }

    /// The f32 transpose-convolution (decoder) inference path tracks f64
    /// to the same tolerance.
    #[test]
    fn convt_f32_infer_matches_f64(
        cin in 1usize..4, cout in 1usize..4,
        h in 3usize..8, w in 3usize..8, seed in 0u64..200,
    ) {
        use mgd_nn::Workspace;
        use mgd_tensor::Element;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = ConvTranspose3d::up2(cin, cout, true, &mut rng);
        let t32 = t.cast_as::<f32>();
        let x = Tensor::rand_uniform([1, cin, 1, h, w], -1.0, 1.0, &mut rng);
        let y64 = t.infer(&x, &mut Workspace::new());
        let y32 = t32.infer(&x.cast::<f32>(), &mut Workspace::<f32>::new());
        let err = y64.rel_l2_error(&y32.cast::<f64>());
        prop_assert!(err < <f32 as Element>::EQUIV_TOL, "convt f32 drift {err}");
    }

    /// A whole f32 U-Net replica (random seeds, both conv backends) tracks
    /// the f64 master network within the f32 equivalence tolerance, and
    /// repeat runs are bitwise deterministic.
    #[test]
    fn unet_f32_matches_f64(seed in 0u64..30, gemm_bit in 0usize..2) {
        use mgd_nn::Workspace;
        use mgd_tensor::Element;
        let cfg = UNetConfig {
            two_d: true, depth: 2, base_filters: 2, seed,
            conv_backend: if gemm_bit == 1 { ConvBackend::Gemm } else { ConvBackend::Direct },
            ..Default::default()
        };
        let mut net = UNet::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF32);
        let _ = net.forward(&Tensor::rand_uniform([2, 1, 1, 8, 8], -1.0, 1.0, &mut rng), true);
        let net32 = net.to_f32();
        let x = Tensor::rand_uniform([1, 1, 1, 8, 8], -1.0, 1.0, &mut rng);
        let y64 = net.infer(&x, &mut Workspace::new());
        let x32 = x.cast::<f32>();
        let y32 = net32.infer(&x32, &mut Workspace::<f32>::new());
        let err = y64.rel_l2_error(&y32.cast::<f64>());
        prop_assert!(err < <f32 as Element>::EQUIV_TOL, "unet f32 drift {err}");
        let again = net32.infer(&x32, &mut Workspace::<f32>::new());
        for (a, b) in y32.as_slice().iter().zip(again.as_slice()) {
            prop_assert!(a.to_bits() == b.to_bits(), "f32 repeat run not bitwise equal");
        }
    }

    /// Gradient accumulation: two backward passes double the parameter
    /// gradient (callers rely on accumulate-then-zero semantics).
    #[test]
    fn gradients_accumulate(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv3d::same(1, 1, (1, 3, 3), &mut rng);
        let x = Tensor::rand_uniform([1, 1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let g = Tensor::rand_uniform([1, 1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&g);
        let once = conv.weight.grad.clone();
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&g);
        for i in 0..once.len() {
            prop_assert!((conv.weight.grad[i] - 2.0 * once[i]).abs() < 1e-9);
        }
    }
}
