//! Property-based tests for the field generators and transfer operators.

use mgd_field::diffusivity::DiffusivityModel;
use mgd_field::sobol::Sobol;
use mgd_field::transfer::{coarsen_average, resample};
use mgd_field::{Dataset, InputEncoding};
use mgd_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sobol stays in the unit box and is deterministic.
    #[test]
    fn sobol_bounds_and_determinism(dim in 1usize..8, n in 1usize..128) {
        let a: Vec<Vec<f64>> = Sobol::new(dim).take(n);
        let b: Vec<Vec<f64>> = Sobol::new(dim).take(n);
        prop_assert_eq!(&a, &b);
        for p in &a {
            prop_assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    /// log ν is bounded by Σ|ωᵢ|λᵢsᵢ² — no overflow anywhere in the box.
    #[test]
    fn log_nu_respects_analytic_bound(
        w in proptest::collection::vec(-3.0..3.0f64, 4),
        x in 0.0..1.0f64, y in 0.0..1.0f64,
    ) {
        let m = DiffusivityModel::paper();
        let bound: f64 = (0..4)
            .map(|i| w[i].abs() * m.lambda[i] * (1.0 + 0.25 * m.a[i] * m.a[i]))
            .sum();
        prop_assert!(m.log_nu_2d(&w, x, y).abs() <= bound + 1e-9);
    }

    /// 3D separable mode is bounded by the same budget.
    #[test]
    fn log_nu_3d_bounded(
        w in proptest::collection::vec(-3.0..3.0f64, 4),
        x in 0.0..1.0f64, y in 0.0..1.0f64, z in 0.0..1.0f64,
    ) {
        let m = DiffusivityModel::paper();
        let bound: f64 = (0..4)
            .map(|i| w[i].abs() * m.lambda[i] * (1.0 + 0.25 * m.a[i] * m.a[i]))
            .sum();
        prop_assert!(m.log_nu_3d(&w, x, y, z).abs() <= bound + 1e-9);
    }

    /// Resampling preserves constants exactly at any resolution pair.
    #[test]
    fn resample_preserves_constants(
        sy in 2usize..12, sx in 2usize..12,
        ty in 2usize..12, tx in 2usize..12,
        c in -5.0..5.0f64,
    ) {
        let f = Tensor::full([sy, sx], c);
        let r = resample(&f, &[ty, tx]);
        prop_assert!(r.as_slice().iter().all(|&v| (v - c).abs() < 1e-12));
    }

    /// Resampled values never exceed the source range (multilinear
    /// interpolation is a convex combination).
    #[test]
    fn resample_respects_range(
        vals in proptest::collection::vec(-10.0..10.0f64, 16),
        ty in 2usize..10, tx in 2usize..10,
    ) {
        let f = Tensor::from_vec([4, 4], vals);
        let r = resample(&f, &[ty, tx]);
        let (lo, hi) = (f.min(), f.max());
        prop_assert!(r.as_slice().iter().all(|&v| v >= lo - 1e-12 && v <= hi + 1e-12));
    }

    /// Block-average coarsening preserves the mean exactly.
    #[test]
    fn coarsen_preserves_mean(vals in proptest::collection::vec(-10.0..10.0f64, 16)) {
        let f = Tensor::from_vec([4, 4], vals);
        let c = coarsen_average(&f);
        prop_assert!((c.mean() - f.mean()).abs() < 1e-12);
    }

    /// Dataset padding always produces divisible lengths and reuses
    /// existing samples.
    #[test]
    fn dataset_padding(n in 1usize..40, p in 1usize..8) {
        let mut d = Dataset::sobol(n, DiffusivityModel::paper(), InputEncoding::LogNu);
        let before = d.omegas.clone();
        d.pad_to_multiple(p);
        prop_assert_eq!(d.len() % p, 0);
        prop_assert!(d.len() >= n && d.len() < n + p);
        for om in &d.omegas[n..] {
            prop_assert!(before.contains(om));
        }
    }

    /// Epoch permutations are valid permutations for any seed/epoch.
    #[test]
    fn permutation_validity(n in 1usize..64, seed in 0u64..100, epoch in 0u64..100) {
        let d = Dataset::sobol(n, DiffusivityModel::paper(), InputEncoding::LogNu);
        let mut p = d.epoch_permutation(seed, epoch);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }
}
