//! Grid-transfer operators between nodal resolutions.
//!
//! Multilinear resampling moves discrete fields between multigrid levels of
//! the training hierarchy (paper §3.1.2). Both grids are uniform over
//! `[0,1]^d` with nodes at `k / (n - 1)`; resampling is exact for
//! multilinear functions, so prolongation of a coarse field and restriction
//! of a fine field are consistent with the FEM basis used by the loss.

use mgd_tensor::par::maybe_par_for;
use mgd_tensor::Tensor;

/// Multilinear resampling of a nodal field to a new resolution.
///
/// Supports rank-2 `(ny, nx)` and rank-3 `(nz, ny, nx)` fields; upsampling
/// and downsampling are both just interpolation at the target nodes (the
/// analytic fields of this paper are smooth, so no anti-alias prefilter is
/// applied; block-average coarsening is available as [`coarsen_average`]).
pub fn resample(field: &Tensor, to_dims: &[usize]) -> Tensor {
    match (field.dims(), to_dims) {
        (&[sy, sx], &[ty, tx]) => {
            let mut out = Tensor::zeros([ty, tx]);
            let src = field.as_slice();
            let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
            maybe_par_for(ty, tx, |j| {
                let y = axis_pos(j, ty, sy);
                // SAFETY: row j of the output is a disjoint slice.
                let row = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(j * tx), tx) };
                for (i, v) in row.iter_mut().enumerate() {
                    let x = axis_pos(i, tx, sx);
                    *v = bilinear(src, sy, sx, y, x);
                }
            });
            out
        }
        (&[sz, sy, sx], &[tz, ty, tx]) => {
            let mut out = Tensor::zeros([tz, ty, tx]);
            let src = field.as_slice();
            let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
            maybe_par_for(tz * ty, tx, |kj| {
                let k = kj / ty;
                let j = kj % ty;
                let z = axis_pos(k, tz, sz);
                let y = axis_pos(j, ty, sy);
                // SAFETY: row (k, j) of the output is a disjoint slice.
                let row = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(kj * tx), tx) };
                for (i, v) in row.iter_mut().enumerate() {
                    let x = axis_pos(i, tx, sx);
                    *v = trilinear(src, sz, sy, sx, z, y, x);
                }
            });
            out
        }
        (s, t) => panic!("resample: unsupported ranks {s:?} -> {t:?}"),
    }
}

/// Block-average coarsening by a factor of 2 along every axis.
///
/// Requires every extent to be even; produces extents halved. Used for ν
/// maps when a smoothing restriction is preferred over pointwise sampling.
pub fn coarsen_average(field: &Tensor) -> Tensor {
    match field.dims() {
        &[ny, nx] => {
            assert!(ny % 2 == 0 && nx % 2 == 0, "extents must be even");
            let (cy, cx) = (ny / 2, nx / 2);
            let mut out = Tensor::zeros([cy, cx]);
            let src = field.as_slice();
            for j in 0..cy {
                for i in 0..cx {
                    let mut s = 0.0;
                    for dj in 0..2 {
                        for di in 0..2 {
                            s += src[(2 * j + dj) * nx + 2 * i + di];
                        }
                    }
                    *out.at_mut(&[j, i]) = s * 0.25;
                }
            }
            out
        }
        &[nz, ny, nx] => {
            assert!(
                nz % 2 == 0 && ny % 2 == 0 && nx % 2 == 0,
                "extents must be even"
            );
            let (cz, cy, cx) = (nz / 2, ny / 2, nx / 2);
            let mut out = Tensor::zeros([cz, cy, cx]);
            let src = field.as_slice();
            for k in 0..cz {
                for j in 0..cy {
                    for i in 0..cx {
                        let mut s = 0.0;
                        for dk in 0..2 {
                            for dj in 0..2 {
                                for di in 0..2 {
                                    s += src[((2 * k + dk) * ny + 2 * j + dj) * nx + 2 * i + di];
                                }
                            }
                        }
                        *out.at_mut(&[k, j, i]) = s * 0.125;
                    }
                }
            }
            out
        }
        d => panic!("coarsen_average: unsupported rank {d:?}"),
    }
}

/// Position of target node `i` (of `tn`) in source index coordinates (of `sn`).
#[inline]
fn axis_pos(i: usize, tn: usize, sn: usize) -> f64 {
    if tn <= 1 {
        0.0
    } else {
        i as f64 / (tn - 1) as f64 * (sn - 1) as f64
    }
}

#[inline]
fn split(p: f64, n: usize) -> (usize, usize, f64) {
    let i0 = (p.floor() as usize).min(n.saturating_sub(2));
    let i1 = (i0 + 1).min(n - 1);
    (i0, i1, p - i0 as f64)
}

#[inline]
fn bilinear(src: &[f64], ny: usize, nx: usize, y: f64, x: f64) -> f64 {
    let (j0, j1, fy) = split(y, ny);
    let (i0, i1, fx) = split(x, nx);
    let a = src[j0 * nx + i0] * (1.0 - fx) + src[j0 * nx + i1] * fx;
    let b = src[j1 * nx + i0] * (1.0 - fx) + src[j1 * nx + i1] * fx;
    a * (1.0 - fy) + b * fy
}

#[inline]
fn trilinear(src: &[f64], nz: usize, ny: usize, nx: usize, z: f64, y: f64, x: f64) -> f64 {
    let (k0, k1, fz) = split(z, nz);
    let plane = |k: usize| bilinear(&src[k * ny * nx..(k + 1) * ny * nx], ny, nx, y, x);
    plane(k0) * (1.0 - fz) + plane(k1) * fz
}

/// Raw-pointer wrapper for disjoint row writes across the rayon boundary.
struct SendPtr(*mut f64);

impl SendPtr {
    /// Returns the pointer; a method (not field access) so edition-2021
    /// closures capture the Sync wrapper rather than the raw pointer.
    fn get(&self) -> *mut f64 {
        self.0
    }
}
// SAFETY: only used to derive per-row disjoint slices in this module.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_field_2d(ny: usize, nx: usize) -> Tensor {
        let mut t = Tensor::zeros([ny, nx]);
        for j in 0..ny {
            for i in 0..nx {
                let x = i as f64 / (nx - 1) as f64;
                let y = j as f64 / (ny - 1) as f64;
                *t.at_mut(&[j, i]) = 2.0 * x - 3.0 * y + 1.0;
            }
        }
        t
    }

    #[test]
    fn resample_exact_for_linear_2d() {
        let f = linear_field_2d(8, 8);
        for &(ty, tx) in &[(4usize, 4usize), (16, 16), (8, 16), (5, 13)] {
            let r = resample(&f, &[ty, tx]);
            let want = linear_field_2d(ty, tx);
            assert!(r.rel_l2_error(&want) < 1e-12, "{ty}x{tx}");
        }
    }

    #[test]
    fn resample_identity_at_same_dims() {
        let f = linear_field_2d(6, 7);
        let r = resample(&f, &[6, 7]);
        assert!(r.rel_l2_error(&f) < 1e-14);
    }

    #[test]
    fn resample_preserves_constants_3d() {
        let f = Tensor::full([4, 4, 4], 3.5);
        let r = resample(&f, &[7, 5, 9]);
        assert_eq!(r.dims(), &[7, 5, 9]);
        for i in 0..r.len() {
            assert!((r[i] - 3.5).abs() < 1e-14);
        }
    }

    #[test]
    fn resample_exact_for_trilinear_3d() {
        let mk = |nz: usize, ny: usize, nx: usize| {
            let mut t = Tensor::zeros([nz, ny, nx]);
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        let x = i as f64 / (nx - 1) as f64;
                        let y = j as f64 / (ny - 1) as f64;
                        let z = k as f64 / (nz - 1) as f64;
                        *t.at_mut(&[k, j, i]) = x + 2.0 * y - z + 0.5;
                    }
                }
            }
            t
        };
        let f = mk(4, 6, 8);
        let r = resample(&f, &[8, 3, 5]);
        let want = mk(8, 3, 5);
        assert!(r.rel_l2_error(&want) < 1e-12);
    }

    #[test]
    fn down_then_up_roundtrip_is_close_for_smooth_field() {
        // Smooth (low-frequency) fields survive a V-shaped resample well.
        let ny = 33;
        let mut f = Tensor::zeros([ny, ny]);
        for j in 0..ny {
            for i in 0..ny {
                let x = i as f64 / (ny - 1) as f64;
                let y = j as f64 / (ny - 1) as f64;
                *f.at_mut(&[j, i]) =
                    (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).cos();
            }
        }
        let down = resample(&f, &[17, 17]);
        let up = resample(&down, &[33, 33]);
        assert!(up.rel_l2_error(&f) < 0.02);
    }

    #[test]
    fn coarsen_average_2d() {
        let f = Tensor::from_vec([2, 4], vec![1.0, 3.0, 5.0, 7.0, 1.0, 3.0, 5.0, 7.0]);
        let c = coarsen_average(&f);
        assert_eq!(c.dims(), &[1, 2]);
        assert_eq!(c.as_slice(), &[2.0, 6.0]);
    }

    #[test]
    fn coarsen_average_3d_preserves_mean() {
        let mut f = Tensor::zeros([4, 4, 4]);
        for i in 0..f.len() {
            f[i] = (i % 7) as f64;
        }
        let c = coarsen_average(&f);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert!((c.mean() - f.mean()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn coarsen_average_odd_panics() {
        let _ = coarsen_average(&Tensor::zeros([3, 4]));
    }
}
