//! Parametric coefficient fields and sampling for MGDiffNet.
//!
//! Implements the data side of the paper:
//! - [`sobol`]: a from-scratch Sobol quasi-random sequence (gray-code
//!   construction, Joe–Kuo direction numbers) — §4.1 samples the PDE
//!   parameter ω with "a quasi-random Sobol sampling methodology".
//! - [`diffusivity`]: the log-permeability expansion of paper Eq. 10,
//!   `ν(x; ω) = exp(Σ ωᵢ λᵢ ξᵢ(x) ηᵢ(y) [ζᵢ(z)])`, rasterized onto nodal
//!   grids at any multigrid resolution.
//! - [`transfer`]: multilinear resampling between grid resolutions (the
//!   training hierarchy re-rasterizes analytic ν, but measured fields and
//!   network outputs move between levels through these operators).
//! - [`dataset`]: ω-indexed datasets with deterministic shuffling, batch
//!   rasterization into NCDHW tensors, and padding for worker divisibility
//!   (paper §3.2: augment so `Ns` divides evenly among `p` workers).

pub mod aniso;
pub mod dataset;
pub mod diffusivity;
pub mod sobol;
pub mod transfer;
pub mod vtk;

pub use aniso::Anisotropy;
pub use dataset::{stack_fields, stack_fields_with, tensorize, Dataset, FieldError, InputEncoding};
pub use diffusivity::{DiffusivityModel, ThreeDMode, OMEGA_RANGE, PAPER_MODES};
pub use sobol::Sobol;
