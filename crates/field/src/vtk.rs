//! Legacy-VTK structured-points output.
//!
//! The paper's software stack writes `.vtu` files for visualization (see
//! its appendix dependency list). For uniform grids the much simpler legacy
//! "STRUCTURED_POINTS" format carries the same information and is readable
//! by ParaView/VisIt; this writer emits ASCII scalars for 2D and 3D nodal
//! fields so predicted/FEM solution fields and coefficient maps can be
//! inspected with standard tools.

use mgd_tensor::Tensor;
use std::io::Write;
use std::path::Path;

/// Writes one or more nodal scalar fields over the unit square/cube.
///
/// All fields must share the same rank-2 `(ny, nx)` or rank-3
/// `(nz, ny, nx)` shape; `names` supplies the VTK array names.
pub fn write_structured_points(path: &Path, fields: &[(&str, &Tensor)]) -> std::io::Result<()> {
    assert!(!fields.is_empty(), "need at least one field");
    let dims = fields[0].1.dims().to_vec();
    for (name, f) in fields {
        assert_eq!(f.dims(), &dims[..], "field {name} has mismatched shape");
        assert!(
            matches!(f.dims().len(), 2 | 3),
            "VTK writer expects rank-2/3 fields, got {name} with rank {}",
            f.dims().len()
        );
    }
    let (nz, ny, nx) = match dims[..] {
        [ny, nx] => (1usize, ny, nx),
        [nz, ny, nx] => (nz, ny, nx),
        _ => unreachable!(),
    };
    let spacing = |n: usize| if n > 1 { 1.0 / (n - 1) as f64 } else { 1.0 };
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    out.push_str("MGDiffNet field dump\nASCII\nDATASET STRUCTURED_POINTS\n");
    // VTK dimension order is x y z (fastest first).
    out.push_str(&format!("DIMENSIONS {nx} {ny} {nz}\n"));
    out.push_str("ORIGIN 0 0 0\n");
    out.push_str(&format!(
        "SPACING {} {} {}\n",
        spacing(nx),
        spacing(ny),
        spacing(nz)
    ));
    out.push_str(&format!("POINT_DATA {}\n", nx * ny * nz));
    for (name, f) in fields {
        out.push_str(&format!("SCALARS {name} double 1\nLOOKUP_TABLE default\n"));
        // Our row-major (z, y, x) layout already matches VTK's
        // x-fastest traversal order.
        for v in f.as_slice() {
            out.push_str(&format!("{v:.9e}\n"));
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mgd_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn header_and_counts_2d() {
        let f = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let p = tmp("f2.vtk");
        write_structured_points(&p, &[("u", &f)]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("DIMENSIONS 3 2 1"));
        assert!(s.contains("POINT_DATA 6"));
        assert!(s.contains("SCALARS u double 1"));
        // 6 values follow the lookup table line.
        let values: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("LOOKUP_TABLE"))
            .skip(1)
            .collect();
        assert_eq!(values.len(), 6);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn multiple_fields_3d() {
        let a = Tensor::full([2, 2, 2], 1.5);
        let b = Tensor::full([2, 2, 2], -0.5);
        let p = tmp("f3.vtk");
        write_structured_points(&p, &[("nu", &a), ("u", &b)]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("DIMENSIONS 2 2 2"));
        assert!(s.contains("SCALARS nu double 1"));
        assert!(s.contains("SCALARS u double 1"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    #[should_panic(expected = "mismatched shape")]
    fn mismatched_shapes_rejected() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([3, 3]);
        let _ = write_structured_points(&tmp("bad.vtk"), &[("a", &a), ("b", &b)]);
    }

    #[test]
    fn spacing_covers_unit_domain() {
        let f = Tensor::zeros([5, 9]);
        let p = tmp("sp.vtk");
        write_structured_points(&p, &[("u", &f)]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("SPACING 0.125 0.25 1"));
        std::fs::remove_file(&p).ok();
    }
}
