//! ω-indexed datasets of parametric diffusivity maps.
//!
//! The training data of the paper is not stored fields but *parameters*: a
//! Sobol sample of ω ∈ [−3,3]⁴ (65,536 points for the 2D studies, 1,024 for
//! 256³). Fields are rasterized on demand at whatever multigrid level is
//! being trained, which is what makes the multigrid hierarchy cheap.

use crate::aniso::Anisotropy;
use crate::diffusivity::DiffusivityModel;
use crate::sobol::Sobol;
use crate::OMEGA_RANGE;
use mgd_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Typed failures of the data layer (rasterization, batching, sampling).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldError {
    /// Spatial dims must be rank 2 (`[ny, nx]`) or 3 (`[nz, ny, nx]`).
    BadRank {
        /// Rank received.
        got: usize,
    },
    /// A sample index exceeded the dataset size.
    SampleOutOfRange {
        /// Offending index.
        sample: usize,
        /// Dataset length.
        len: usize,
    },
    /// An ω vector's dimension disagreed with the diffusivity model.
    OmegaDimMismatch {
        /// Dimension received.
        got: usize,
        /// Dimension the model expects.
        expected: usize,
    },
    /// A batch entry's spatial shape disagreed with the others.
    ShapeMismatch {
        /// Shape of the offending entry.
        got: Vec<usize>,
        /// Shape required.
        expected: Vec<usize>,
    },
    /// An empty batch or dataset where at least one element is required.
    Empty,
    /// Anisotropy knobs that cannot yield an SPD tensor field.
    InvalidAnisotropy {
        /// What was wrong (human-readable).
        reason: &'static str,
    },
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::BadRank { got } => {
                write!(f, "expected 2 or 3 spatial dims, got rank {got}")
            }
            FieldError::SampleOutOfRange { sample, len } => {
                write!(f, "sample index {sample} out of range for dataset of {len}")
            }
            FieldError::OmegaDimMismatch { got, expected } => {
                write!(
                    f,
                    "omega has {got} modes, diffusivity model expects {expected}"
                )
            }
            FieldError::ShapeMismatch { got, expected } => {
                write!(
                    f,
                    "field shape {got:?} does not match expected {expected:?}"
                )
            }
            FieldError::Empty => write!(f, "empty batch/dataset"),
            FieldError::InvalidAnisotropy { reason } => {
                write!(f, "invalid anisotropy: {reason}")
            }
        }
    }
}

impl std::error::Error for FieldError {}

/// Stacks per-sample spatial fields (`[ny, nx]` or `[nz, ny, nx]`, all
/// identical shapes) into one NCDHW batch tensor `[B, 1, (nz,) ny, nx]` —
/// the batched-inference entry point: N requests become one tensor pass.
pub fn stack_fields(fields: &[Tensor]) -> Result<Tensor, FieldError> {
    let first = fields.first().ok_or(FieldError::Empty)?;
    let rank = first.dims().len();
    if rank != 2 && rank != 3 {
        return Err(FieldError::BadRank { got: rank });
    }
    stack_fields_with(fields, rank)
}

/// [`stack_fields`] with an explicit spatial rank, resolving the
/// channel/depth ambiguity of rank-3 per-sample tensors: with
/// `spatial_rank == 2` a `[C, ny, nx]` field stacks to `[B, C, 1, ny, nx]`
/// (multi-channel 2D, e.g. tensor coefficients); with `spatial_rank == 3`
/// the same shape is read as `[nz, ny, nx]` single-channel 3D. Rank-4
/// fields are always `[C, nz, ny, nx]`.
pub fn stack_fields_with(fields: &[Tensor], spatial_rank: usize) -> Result<Tensor, FieldError> {
    let first = fields.first().ok_or(FieldError::Empty)?;
    let dims = first.dims().to_vec();
    if spatial_rank != 2 && spatial_rank != 3 {
        return Err(FieldError::BadRank { got: spatial_rank });
    }
    let mut out = match (spatial_rank, &dims[..]) {
        (2, [ny, nx]) => Tensor::zeros([fields.len(), 1, 1, *ny, *nx]),
        (2, [c, ny, nx]) => Tensor::zeros([fields.len(), *c, 1, *ny, *nx]),
        (3, [nz, ny, nx]) => Tensor::zeros([fields.len(), 1, *nz, *ny, *nx]),
        (3, [c, nz, ny, nx]) => Tensor::zeros([fields.len(), *c, *nz, *ny, *nx]),
        _ => return Err(FieldError::BadRank { got: dims.len() }),
    };
    let vol: usize = dims.iter().product();
    for (i, fld) in fields.iter().enumerate() {
        if fld.dims() != &dims[..] {
            return Err(FieldError::ShapeMismatch {
                got: fld.dims().to_vec(),
                expected: dims,
            });
        }
        out.as_mut_slice()[i * vol..(i + 1) * vol].copy_from_slice(fld.as_slice());
    }
    Ok(out)
}

/// What the network sees as its input channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputEncoding {
    /// `log ν` — the bounded KL-expansion field (default; see DESIGN.md §7).
    LogNu,
    /// Raw ν = exp(log ν); spans orders of magnitude.
    RawNu,
}

impl InputEncoding {
    /// Encodes a raw coefficient field ν into the network's input channel
    /// (identity for [`InputEncoding::RawNu`], elementwise `ln` for
    /// [`InputEncoding::LogNu`]). Used by serving paths that receive ν
    /// fields directly rather than ω parameters.
    pub fn encode(&self, nu: &Tensor) -> Tensor {
        match self {
            InputEncoding::RawNu => nu.clone(),
            InputEncoding::LogNu => {
                let mut out = nu.clone();
                for v in out.as_mut_slice() {
                    *v = v.ln();
                }
                out
            }
        }
    }

    /// Encodes a coefficient block with `ncomp` channels. One channel
    /// delegates to [`encode`](Self::encode) (bitwise-identical scalar
    /// path); multi-channel `LogNu` uses `asinh` per entry instead of `ln`
    /// because tensor off-diagonals are zero or negative where `ln` is
    /// undefined, while `asinh` is log-like for large magnitudes and
    /// smooth through zero.
    pub fn encode_coeff(&self, coeff: &Tensor, ncomp: usize) -> Tensor {
        if ncomp <= 1 {
            return self.encode(coeff);
        }
        match self {
            InputEncoding::RawNu => coeff.clone(),
            InputEncoding::LogNu => {
                let mut out = coeff.clone();
                for v in out.as_mut_slice() {
                    *v = v.asinh();
                }
                out
            }
        }
    }
}

/// A set of PDE-parameter samples with on-demand rasterization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// The parameter vectors ω.
    pub omegas: Vec<Vec<f64>>,
    /// The diffusivity model shared by all samples.
    pub model: DiffusivityModel,
    /// Input encoding for network consumption.
    pub encoding: InputEncoding,
    /// Optional anisotropy: when set, coefficient fields are symmetric
    /// tensors derived from the scalar KL field (absent in serialized
    /// datasets from before the operator zoo — defaults to `None`).
    #[serde(default)]
    pub aniso: Option<Anisotropy>,
}

impl Dataset {
    /// Sobol-samples `n` parameter vectors in the paper's box [−3,3]^m.
    pub fn sobol(n: usize, model: DiffusivityModel, encoding: InputEncoding) -> Self {
        let mut sobol = Sobol::new(model.num_modes());
        let omegas = sobol.take_in_box(n, OMEGA_RANGE.0, OMEGA_RANGE.1);
        Dataset {
            omegas,
            model,
            encoding,
            aniso: None,
        }
    }

    /// Dataset from explicit ω vectors (e.g. the paper's anecdotal values).
    pub fn from_omegas(
        omegas: Vec<Vec<f64>>,
        model: DiffusivityModel,
        encoding: InputEncoding,
    ) -> Self {
        for om in &omegas {
            assert_eq!(om.len(), model.num_modes(), "omega dimension mismatch");
        }
        Dataset {
            omegas,
            model,
            encoding,
            aniso: None,
        }
    }

    /// Attaches anisotropy knobs (validated), turning every coefficient
    /// field into a symmetric tensor field.
    pub fn with_anisotropy(mut self, aniso: Anisotropy) -> Result<Self, FieldError> {
        aniso.validate()?;
        self.aniso = Some(aniso);
        Ok(self)
    }

    /// Coefficient components per node for `rank` spatial dims (1 for the
    /// scalar model, `rank(rank+1)/2` with anisotropy attached).
    pub fn ncomp(&self, rank: usize) -> usize {
        match self.aniso {
            Some(_) => Anisotropy::ncomp(rank),
            None => 1,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.omegas.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.omegas.is_empty()
    }

    /// Pads the dataset by wrapping so `len` is divisible by `p`
    /// (paper §3.2: "augmenting the dataset to make the total number of
    /// training samples Ns divisible by the number of workers p").
    pub fn pad_to_multiple(&mut self, p: usize) {
        assert!(p > 0);
        let rem = self.omegas.len() % p;
        if rem != 0 {
            for i in 0..(p - rem) {
                let om = self.omegas[i % self.omegas.len().max(1)].clone();
                self.omegas.push(om);
            }
        }
    }

    /// Deterministic epoch shuffle: every worker derives the identical
    /// permutation from `(seed, epoch)`, which the Eq. 15 sharding invariant
    /// relies on.
    pub fn epoch_permutation(&self, seed: u64, epoch: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.omegas.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        idx.shuffle(&mut rng);
        idx
    }

    /// Rasterizes the input field for one sample on nodal `dims`
    /// (`[ny, nx]` or `[nz, ny, nx]`). With anisotropy attached the result
    /// gains a leading channel axis (`[C, spatial...]`) and multi-channel
    /// encoding ([`InputEncoding::encode_coeff`]).
    pub fn input_field(&self, sample: usize, dims: &[usize]) -> Tensor {
        if self.aniso.is_some() {
            let nu = self.nu_field(sample, dims);
            return self.encoding.encode_coeff(&nu, self.ncomp(dims.len()));
        }
        let om = &self.omegas[sample];
        match self.encoding {
            InputEncoding::LogNu => self.model.rasterize_log(om, dims),
            InputEncoding::RawNu => self.model.rasterize(om, dims),
        }
    }

    /// Rasterizes the *coefficient* field (always raw) used by the FEM
    /// energy loss, independent of the network input encoding: `[spatial]`
    /// scalar ν, or component-major `[C, spatial...]` tensor components
    /// when anisotropy is attached.
    pub fn nu_field(&self, sample: usize, dims: &[usize]) -> Tensor {
        let scalar = self.model.rasterize(&self.omegas[sample], dims);
        match self.aniso {
            None => scalar,
            Some(a) => tensorize(&scalar, a, dims),
        }
    }

    /// Rasterizes a batch of samples into an NCDHW tensor `[B, 1, (nz,) ny, nx]`.
    ///
    /// 2D grids get a unit depth axis so 2D and 3D share the conv kernels.
    /// Panicking convenience wrapper over [`Self::try_batch_inputs`] for
    /// call sites that validated `dims`/`samples` upstream.
    pub fn batch_inputs(&self, samples: &[usize], dims: &[usize]) -> Tensor {
        self.try_batch_inputs(samples, dims)
            .expect("batch rasterization")
    }

    /// Fallible batch rasterization (the trainer/serving hot path). The
    /// channel axis is [`Self::ncomp`] wide: `[B, C, (nz,) ny, nx]`.
    pub fn try_batch_inputs(
        &self,
        samples: &[usize],
        dims: &[usize],
    ) -> Result<Tensor, FieldError> {
        self.check_samples(samples)?;
        let b = samples.len();
        if dims.len() != 2 && dims.len() != 3 {
            return Err(FieldError::BadRank { got: dims.len() });
        }
        if self.aniso.is_some() {
            let vol: usize = dims.iter().product::<usize>() * self.ncomp(dims.len());
            let fields = mgd_tensor::par::maybe_par_map_collect(b, vol, |i| {
                self.input_field(samples[i], dims)
            });
            return stack_fields_with(&fields, dims.len());
        }
        let vol: usize = dims.iter().product();
        let mut out = match dims.len() {
            2 => Tensor::zeros([b, 1, 1, dims[0], dims[1]]),
            3 => Tensor::zeros([b, 1, dims[0], dims[1], dims[2]]),
            r => return Err(FieldError::BadRank { got: r }),
        };
        let fields =
            mgd_tensor::par::maybe_par_map_collect(b, vol, |i| self.input_field(samples[i], dims));
        for (i, f) in fields.into_iter().enumerate() {
            out.as_mut_slice()[i * vol..(i + 1) * vol].copy_from_slice(f.as_slice());
        }
        Ok(out)
    }

    /// Rasterizes the ν fields for a batch, shaped `[B, spatial...]`.
    /// Panicking convenience wrapper over [`Self::try_batch_nu`].
    pub fn batch_nu(&self, samples: &[usize], dims: &[usize]) -> Vec<Tensor> {
        self.try_batch_nu(samples, dims)
            .expect("batch rasterization")
    }

    /// Fallible ν-field batch rasterization (the energy-loss hot path).
    pub fn try_batch_nu(
        &self,
        samples: &[usize],
        dims: &[usize],
    ) -> Result<Vec<Tensor>, FieldError> {
        self.check_samples(samples)?;
        if dims.len() != 2 && dims.len() != 3 {
            return Err(FieldError::BadRank { got: dims.len() });
        }
        let vol: usize = dims.iter().product();
        Ok(mgd_tensor::par::maybe_par_map_collect(
            samples.len(),
            vol,
            |i| self.nu_field(samples[i], dims),
        ))
    }

    /// Rasterizes arbitrary ω vectors (not dataset members) straight into an
    /// NCDHW input batch — the serving-side entry point for requests that
    /// arrive as PDE parameters rather than coefficient fields.
    pub fn rasterize_batch(
        &self,
        omegas: &[Vec<f64>],
        dims: &[usize],
    ) -> Result<Tensor, FieldError> {
        if omegas.is_empty() {
            return Err(FieldError::Empty);
        }
        for om in omegas {
            if om.len() != self.model.num_modes() {
                return Err(FieldError::OmegaDimMismatch {
                    got: om.len(),
                    expected: self.model.num_modes(),
                });
            }
        }
        if dims.len() != 2 && dims.len() != 3 {
            return Err(FieldError::BadRank { got: dims.len() });
        }
        if let Some(a) = self.aniso {
            let nc = self.ncomp(dims.len());
            let vol: usize = dims.iter().product::<usize>() * nc;
            let fields = mgd_tensor::par::maybe_par_map_collect(omegas.len(), vol, |i| {
                let scalar = self.model.rasterize(&omegas[i], dims);
                self.encoding.encode_coeff(&tensorize(&scalar, a, dims), nc)
            });
            return stack_fields_with(&fields, dims.len());
        }
        let vol: usize = dims.iter().product();
        let fields =
            mgd_tensor::par::maybe_par_map_collect(omegas.len(), vol, |i| match self.encoding {
                InputEncoding::LogNu => self.model.rasterize_log(&omegas[i], dims),
                InputEncoding::RawNu => self.model.rasterize(&omegas[i], dims),
            });
        stack_fields(&fields)
    }

    fn check_samples(&self, samples: &[usize]) -> Result<(), FieldError> {
        if samples.is_empty() {
            return Err(FieldError::Empty);
        }
        for &s in samples {
            if s >= self.omegas.len() {
                return Err(FieldError::SampleOutOfRange {
                    sample: s,
                    len: self.omegas.len(),
                });
            }
        }
        Ok(())
    }
}

/// Expands a scalar field `[spatial...]` into component-major symmetric
/// tensor planes `[C, spatial...]` under the given anisotropy.
pub fn tensorize(scalar: &Tensor, a: Anisotropy, dims: &[usize]) -> Tensor {
    let rank = dims.len();
    let nc = Anisotropy::ncomp(rank);
    let vol: usize = dims.iter().product();
    let mut shape = Vec::with_capacity(rank + 1);
    shape.push(nc);
    shape.extend_from_slice(dims);
    let mut out = Tensor::zeros(shape);
    let data = out.as_mut_slice();
    let mut t = [0.0; 6];
    for (i, &s) in scalar.as_slice().iter().enumerate() {
        a.tensor_components(s, rank, &mut t);
        for (c, &tc) in t.iter().enumerate().take(nc) {
            data[c * vol + i] = tc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusivity::DiffusivityModel;

    fn ds(n: usize) -> Dataset {
        Dataset::sobol(n, DiffusivityModel::paper(), InputEncoding::LogNu)
    }

    #[test]
    fn sobol_dataset_in_box() {
        let d = ds(64);
        assert_eq!(d.len(), 64);
        for om in &d.omegas {
            assert_eq!(om.len(), 4);
            assert!(om.iter().all(|&w| (-3.0..3.0).contains(&w)));
        }
    }

    #[test]
    fn pad_to_multiple_wraps() {
        let mut d = ds(10);
        d.pad_to_multiple(4);
        assert_eq!(d.len(), 12);
        assert_eq!(d.omegas[10], d.omegas[0]);
        assert_eq!(d.omegas[11], d.omegas[1]);
        // Already divisible: no-op.
        d.pad_to_multiple(4);
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn permutation_is_deterministic_and_epoch_dependent() {
        let d = ds(32);
        let p1 = d.epoch_permutation(7, 0);
        let p2 = d.epoch_permutation(7, 0);
        let p3 = d.epoch_permutation(7, 1);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn batch_inputs_shape_2d_and_3d() {
        let d = ds(4);
        let b2 = d.batch_inputs(&[0, 1, 2], &[8, 8]);
        assert_eq!(b2.dims(), &[3, 1, 1, 8, 8]);
        let b3 = d.batch_inputs(&[0, 1], &[4, 8, 8]);
        assert_eq!(b3.dims(), &[2, 1, 4, 8, 8]);
    }

    #[test]
    fn batch_inputs_matches_single_rasterization() {
        let d = ds(3);
        let b = d.batch_inputs(&[2, 0], &[8, 8]);
        let f2 = d.input_field(2, &[8, 8]);
        let f0 = d.input_field(0, &[8, 8]);
        assert_eq!(&b.as_slice()[0..64], f2.as_slice());
        assert_eq!(&b.as_slice()[64..128], f0.as_slice());
    }

    #[test]
    fn stack_fields_matches_batch_inputs() {
        let d = ds(3);
        let fields: Vec<Tensor> = (0..3).map(|s| d.input_field(s, &[8, 8])).collect();
        let stacked = stack_fields(&fields).unwrap();
        assert_eq!(stacked, d.batch_inputs(&[0, 1, 2], &[8, 8]));
    }

    #[test]
    fn stack_fields_rejects_bad_input() {
        assert_eq!(stack_fields(&[]), Err(FieldError::Empty));
        let a = Tensor::ones([4, 4]);
        let b = Tensor::ones([8, 8]);
        assert!(matches!(
            stack_fields(&[a.clone(), b]),
            Err(FieldError::ShapeMismatch { .. })
        ));
        let r1 = Tensor::ones([4]);
        assert_eq!(stack_fields(&[r1]), Err(FieldError::BadRank { got: 1 }));
        let _ = a;
    }

    #[test]
    fn rasterize_batch_matches_dataset_rasterization() {
        let d = ds(2);
        let batch = d.rasterize_batch(&d.omegas.clone(), &[8, 8]).unwrap();
        assert_eq!(batch, d.batch_inputs(&[0, 1], &[8, 8]));
        // Wrong omega dimension is a typed error.
        assert!(matches!(
            d.rasterize_batch(&[vec![0.0; 3]], &[8, 8]),
            Err(FieldError::OmegaDimMismatch {
                got: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn try_batch_inputs_reports_typed_errors() {
        let d = ds(2);
        assert!(matches!(
            d.try_batch_inputs(&[5], &[8, 8]),
            Err(FieldError::SampleOutOfRange { sample: 5, len: 2 })
        ));
        assert!(matches!(
            d.try_batch_inputs(&[0], &[8]),
            Err(FieldError::BadRank { got: 1 })
        ));
        assert!(d.try_batch_inputs(&[0, 1], &[8, 8]).is_ok());
    }

    #[test]
    fn aniso_fields_gain_channel_axis() {
        let d = ds(3)
            .with_anisotropy(Anisotropy::new(4.0, 0.5).unwrap())
            .unwrap();
        assert_eq!(d.ncomp(2), 3);
        assert_eq!(d.ncomp(3), 6);
        let nu = d.nu_field(0, &[8, 8]);
        assert_eq!(nu.dims(), &[3, 8, 8]);
        let inp = d.input_field(0, &[8, 8]);
        assert_eq!(inp.dims(), &[3, 8, 8]);
        let b = d.try_batch_inputs(&[0, 1], &[8, 8]).unwrap();
        assert_eq!(b.dims(), &[2, 3, 1, 8, 8]);
        let b3 = d.try_batch_inputs(&[0], &[4, 8, 8]).unwrap();
        assert_eq!(b3.dims(), &[1, 6, 4, 8, 8]);
        let rb = d.rasterize_batch(&d.omegas[..2], &[8, 8]).unwrap();
        assert_eq!(rb, b);
    }

    #[test]
    fn aniso_components_match_scalar_rotation() {
        let a = Anisotropy::new(3.0, 0.4).unwrap();
        let d = ds(1).with_anisotropy(a).unwrap();
        let scalar = d.model.rasterize(&d.omegas[0], &[8, 8]);
        let nu = d.nu_field(0, &[8, 8]);
        let vol = 64;
        let mut t = [0.0; 3];
        for i in (0..vol).step_by(7) {
            a.tensor_components(scalar[i], 2, &mut t);
            for c in 0..3 {
                assert_eq!(nu.as_slice()[c * vol + i].to_bits(), t[c].to_bits());
            }
        }
    }

    #[test]
    fn multi_channel_lognu_uses_asinh() {
        let d = ds(1)
            .with_anisotropy(Anisotropy::new(2.0, 0.3).unwrap())
            .unwrap();
        let nu = d.nu_field(0, &[8, 8]);
        let inp = d.input_field(0, &[8, 8]);
        for i in 0..nu.len() {
            assert!((inp.as_slice()[i] - nu.as_slice()[i].asinh()).abs() < 1e-15);
        }
    }

    #[test]
    fn serde_roundtrip_defaults_aniso_to_none() {
        let d = ds(2);
        let json = serde_json::to_string(&d).unwrap();
        // A pre-operator-zoo dataset has no `aniso` key; deserializing one
        // must still work (backward compatibility).
        assert!(json.contains("\"aniso\""));
        let stripped = json
            .replace(",\"aniso\":null", "")
            .replace("\"aniso\":null,", "");
        let back: Dataset = serde_json::from_str(&stripped).unwrap();
        assert!(back.aniso.is_none());
        let with = d
            .with_anisotropy(Anisotropy::new(5.0, 1.2).unwrap())
            .unwrap();
        let json2 = serde_json::to_string(&with).unwrap();
        let back2: Dataset = serde_json::from_str(&json2).unwrap();
        assert_eq!(back2.aniso, with.aniso);
    }

    #[test]
    fn encode_maps_nu_to_network_input() {
        let d = ds(1);
        let nu = d.nu_field(0, &[8, 8]);
        let enc = InputEncoding::LogNu.encode(&nu);
        let direct = d.input_field(0, &[8, 8]);
        for i in 0..enc.len() {
            assert!((enc[i] - direct[i]).abs() < 1e-12);
        }
        assert_eq!(InputEncoding::RawNu.encode(&nu).as_slice(), nu.as_slice());
    }

    #[test]
    fn encoding_changes_input_not_nu() {
        let mut d = ds(2);
        let log_in = d.input_field(0, &[8, 8]);
        d.encoding = InputEncoding::RawNu;
        let raw_in = d.input_field(0, &[8, 8]);
        for i in 0..log_in.len() {
            assert!((raw_in[i] - log_in[i].exp()).abs() < 1e-12);
        }
        let nu = d.nu_field(0, &[8, 8]);
        assert_eq!(nu.as_slice(), raw_in.as_slice());
    }
}
