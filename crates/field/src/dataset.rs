//! ω-indexed datasets of parametric diffusivity maps.
//!
//! The training data of the paper is not stored fields but *parameters*: a
//! Sobol sample of ω ∈ [−3,3]⁴ (65,536 points for the 2D studies, 1,024 for
//! 256³). Fields are rasterized on demand at whatever multigrid level is
//! being trained, which is what makes the multigrid hierarchy cheap.

use crate::diffusivity::DiffusivityModel;
use crate::sobol::Sobol;
use crate::OMEGA_RANGE;
use mgd_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// What the network sees as its input channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputEncoding {
    /// `log ν` — the bounded KL-expansion field (default; see DESIGN.md §7).
    LogNu,
    /// Raw ν = exp(log ν); spans orders of magnitude.
    RawNu,
}

/// A set of PDE-parameter samples with on-demand rasterization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// The parameter vectors ω.
    pub omegas: Vec<Vec<f64>>,
    /// The diffusivity model shared by all samples.
    pub model: DiffusivityModel,
    /// Input encoding for network consumption.
    pub encoding: InputEncoding,
}

impl Dataset {
    /// Sobol-samples `n` parameter vectors in the paper's box [−3,3]^m.
    pub fn sobol(n: usize, model: DiffusivityModel, encoding: InputEncoding) -> Self {
        let mut sobol = Sobol::new(model.num_modes());
        let omegas = sobol.take_in_box(n, OMEGA_RANGE.0, OMEGA_RANGE.1);
        Dataset { omegas, model, encoding }
    }

    /// Dataset from explicit ω vectors (e.g. the paper's anecdotal values).
    pub fn from_omegas(omegas: Vec<Vec<f64>>, model: DiffusivityModel, encoding: InputEncoding) -> Self {
        for om in &omegas {
            assert_eq!(om.len(), model.num_modes(), "omega dimension mismatch");
        }
        Dataset { omegas, model, encoding }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.omegas.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.omegas.is_empty()
    }

    /// Pads the dataset by wrapping so `len` is divisible by `p`
    /// (paper §3.2: "augmenting the dataset to make the total number of
    /// training samples Ns divisible by the number of workers p").
    pub fn pad_to_multiple(&mut self, p: usize) {
        assert!(p > 0);
        let rem = self.omegas.len() % p;
        if rem != 0 {
            for i in 0..(p - rem) {
                let om = self.omegas[i % self.omegas.len().max(1)].clone();
                self.omegas.push(om);
            }
        }
    }

    /// Deterministic epoch shuffle: every worker derives the identical
    /// permutation from `(seed, epoch)`, which the Eq. 15 sharding invariant
    /// relies on.
    pub fn epoch_permutation(&self, seed: u64, epoch: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.omegas.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        idx.shuffle(&mut rng);
        idx
    }

    /// Rasterizes the input field for one sample on nodal `dims`
    /// (`[ny, nx]` or `[nz, ny, nx]`).
    pub fn input_field(&self, sample: usize, dims: &[usize]) -> Tensor {
        let om = &self.omegas[sample];
        match self.encoding {
            InputEncoding::LogNu => self.model.rasterize_log(om, dims),
            InputEncoding::RawNu => self.model.rasterize(om, dims),
        }
    }

    /// Rasterizes the *coefficient* field ν (always raw) used by the FEM
    /// energy loss, independent of the network input encoding.
    pub fn nu_field(&self, sample: usize, dims: &[usize]) -> Tensor {
        self.model.rasterize(&self.omegas[sample], dims)
    }

    /// Rasterizes a batch of samples into an NCDHW tensor `[B, 1, (nz,) ny, nx]`.
    ///
    /// 2D grids get a unit depth axis so 2D and 3D share the conv kernels.
    pub fn batch_inputs(&self, samples: &[usize], dims: &[usize]) -> Tensor {
        let vol: usize = dims.iter().product();
        let b = samples.len();
        let mut out = match dims.len() {
            2 => Tensor::zeros([b, 1, 1, dims[0], dims[1]]),
            3 => Tensor::zeros([b, 1, dims[0], dims[1], dims[2]]),
            r => panic!("batch_inputs expects 2 or 3 spatial dims, got {r}"),
        };
        let fields = mgd_tensor::par::maybe_par_map_collect(b, vol, |i| {
            self.input_field(samples[i], dims)
        });
        for (i, f) in fields.into_iter().enumerate() {
            out.as_mut_slice()[i * vol..(i + 1) * vol].copy_from_slice(f.as_slice());
        }
        out
    }

    /// Rasterizes the ν fields for a batch, shaped `[B, spatial...]`.
    pub fn batch_nu(&self, samples: &[usize], dims: &[usize]) -> Vec<Tensor> {
        let vol: usize = dims.iter().product();
        mgd_tensor::par::maybe_par_map_collect(samples.len(), vol, |i| {
            self.nu_field(samples[i], dims)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusivity::DiffusivityModel;

    fn ds(n: usize) -> Dataset {
        Dataset::sobol(n, DiffusivityModel::paper(), InputEncoding::LogNu)
    }

    #[test]
    fn sobol_dataset_in_box() {
        let d = ds(64);
        assert_eq!(d.len(), 64);
        for om in &d.omegas {
            assert_eq!(om.len(), 4);
            assert!(om.iter().all(|&w| (-3.0..3.0).contains(&w)));
        }
    }

    #[test]
    fn pad_to_multiple_wraps() {
        let mut d = ds(10);
        d.pad_to_multiple(4);
        assert_eq!(d.len(), 12);
        assert_eq!(d.omegas[10], d.omegas[0]);
        assert_eq!(d.omegas[11], d.omegas[1]);
        // Already divisible: no-op.
        d.pad_to_multiple(4);
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn permutation_is_deterministic_and_epoch_dependent() {
        let d = ds(32);
        let p1 = d.epoch_permutation(7, 0);
        let p2 = d.epoch_permutation(7, 0);
        let p3 = d.epoch_permutation(7, 1);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn batch_inputs_shape_2d_and_3d() {
        let d = ds(4);
        let b2 = d.batch_inputs(&[0, 1, 2], &[8, 8]);
        assert_eq!(b2.dims(), &[3, 1, 1, 8, 8]);
        let b3 = d.batch_inputs(&[0, 1], &[4, 8, 8]);
        assert_eq!(b3.dims(), &[2, 1, 4, 8, 8]);
    }

    #[test]
    fn batch_inputs_matches_single_rasterization() {
        let d = ds(3);
        let b = d.batch_inputs(&[2, 0], &[8, 8]);
        let f2 = d.input_field(2, &[8, 8]);
        let f0 = d.input_field(0, &[8, 8]);
        assert_eq!(&b.as_slice()[0..64], f2.as_slice());
        assert_eq!(&b.as_slice()[64..128], f0.as_slice());
    }

    #[test]
    fn encoding_changes_input_not_nu() {
        let mut d = ds(2);
        let log_in = d.input_field(0, &[8, 8]);
        d.encoding = InputEncoding::RawNu;
        let raw_in = d.input_field(0, &[8, 8]);
        for i in 0..log_in.len() {
            assert!((raw_in[i] - log_in[i].exp()).abs() < 1e-12);
        }
        let nu = d.nu_field(0, &[8, 8]);
        assert_eq!(nu.as_slice(), raw_in.as_slice());
    }
}
