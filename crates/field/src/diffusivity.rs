//! The paper's parametric log-permeability field (Eq. 10).
//!
//! ```text
//! ν(x; ω) = exp( Σ_{i=1..m} ωᵢ λᵢ ξᵢ(x) ηᵢ(y) )          (2D, paper Eq. 10)
//! λᵢ = 1 / (1 + 0.25 aᵢ²),  a = (1.72, 4.05, 6.85, 9.82)
//! ξᵢ(t) = ηᵢ(t) = (aᵢ/2)·cos(aᵢ t) + sin(aᵢ t)
//! ```
//!
//! The paper trains on 256³/512³ maps "as described by Equation 10" without
//! spelling out the z-dependence; we provide both natural readings (see
//! [`ThreeDMode`]) and document the choice in DESIGN.md §3.

use mgd_tensor::par::maybe_par_for;
use mgd_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The paper's four KL-style modes `a = (1.72, 4.05, 6.85, 9.82)`.
pub const PAPER_MODES: [f64; 4] = [1.72, 4.05, 6.85, 9.82];

/// The paper's parameter box: ω ∈ [−3, 3]^4.
pub const OMEGA_RANGE: (f64, f64) = (-3.0, 3.0);

/// How Eq. 10 (written for (x, y)) extends to 3D domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreeDMode {
    /// `ν(x,y,z) = exp(Σ ωᵢλᵢ ξᵢ(x) ηᵢ(y))` — the 2D field extruded along z
    /// (the most literal reading of "as described by Equation 10").
    Extrude,
    /// `ν(x,y,z) = exp(Σ ωᵢλᵢ ξᵢ(x) ηᵢ(y) ζᵢ(z)/sᵢ)` with `ζᵢ = ξᵢ` and
    /// `sᵢ = sup|ξᵢ| = sqrt(1 + aᵢ²/4)` — fully 3D variation with the same
    /// exponent magnitude as the 2D field (avoids `exp` overflow from the
    /// extra factor).
    Separable,
}

/// Evaluator/rasterizer for the parametric diffusivity ν(x; ω).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiffusivityModel {
    /// Mode frequencies aᵢ.
    pub a: Vec<f64>,
    /// Eigenvalue-like decay λᵢ = 1/(1 + 0.25 aᵢ²).
    pub lambda: Vec<f64>,
    /// 3D extension mode.
    pub mode3d: ThreeDMode,
}

impl Default for DiffusivityModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl DiffusivityModel {
    /// The paper's model: m = 4 modes, `a = (1.72, 4.05, 6.85, 9.82)`.
    pub fn paper() -> Self {
        let a = PAPER_MODES.to_vec();
        let lambda = a.iter().map(|ai| 1.0 / (1.0 + 0.25 * ai * ai)).collect();
        DiffusivityModel {
            a,
            lambda,
            mode3d: ThreeDMode::Separable,
        }
    }

    /// Same model with the extruded 3D reading.
    pub fn paper_extruded() -> Self {
        DiffusivityModel {
            mode3d: ThreeDMode::Extrude,
            ..Self::paper()
        }
    }

    /// Number of modes m (the dimensionality of ω).
    pub fn num_modes(&self) -> usize {
        self.a.len()
    }

    /// The 1D factor ξᵢ(t) = (aᵢ/2) cos(aᵢ t) + sin(aᵢ t).
    #[inline]
    pub fn xi(&self, i: usize, t: f64) -> f64 {
        let a = self.a[i];
        0.5 * a * (a * t).cos() + (a * t).sin()
    }

    /// Amplitude bound sᵢ = sqrt(1 + aᵢ²/4) ≥ sup |ξᵢ|.
    #[inline]
    fn amp(&self, i: usize) -> f64 {
        (1.0 + 0.25 * self.a[i] * self.a[i]).sqrt()
    }

    /// Log-diffusivity at a 2D point.
    pub fn log_nu_2d(&self, omega: &[f64], x: f64, y: f64) -> f64 {
        assert_eq!(omega.len(), self.num_modes(), "omega has wrong dimension");
        (0..self.num_modes())
            .map(|i| omega[i] * self.lambda[i] * self.xi(i, x) * self.xi(i, y))
            .sum()
    }

    /// Log-diffusivity at a 3D point (per [`ThreeDMode`]).
    pub fn log_nu_3d(&self, omega: &[f64], x: f64, y: f64, z: f64) -> f64 {
        assert_eq!(omega.len(), self.num_modes(), "omega has wrong dimension");
        match self.mode3d {
            ThreeDMode::Extrude => self.log_nu_2d(omega, x, y),
            ThreeDMode::Separable => (0..self.num_modes())
                .map(|i| {
                    omega[i] * self.lambda[i] * self.xi(i, x) * self.xi(i, y) * self.xi(i, z)
                        / self.amp(i)
                })
                .sum(),
        }
    }

    /// Diffusivity ν = exp(log ν) at a 2D point.
    pub fn nu_2d(&self, omega: &[f64], x: f64, y: f64) -> f64 {
        self.log_nu_2d(omega, x, y).exp()
    }

    /// Diffusivity ν = exp(log ν) at a 3D point.
    pub fn nu_3d(&self, omega: &[f64], x: f64, y: f64, z: f64) -> f64 {
        self.log_nu_3d(omega, x, y, z).exp()
    }

    /// Rasterizes log ν onto the nodes of a uniform grid over `[0,1]^d`.
    ///
    /// `dims` is `(height, width)` for 2D or `(depth, height, width)` for
    /// 3D, x on the fastest axis; node k of an n-point axis sits at
    /// `k / (n - 1)`.
    pub fn rasterize_log(&self, omega: &[f64], dims: &[usize]) -> Tensor {
        match dims {
            [ny, nx] => {
                let (ny, nx) = (*ny, *nx);
                let mut out = Tensor::zeros([ny, nx]);
                let data = out.as_mut_slice();
                let hx = 1.0 / (nx - 1) as f64;
                let hy = 1.0 / (ny - 1) as f64;
                // SAFETY-free parallel split: rows are disjoint slices.
                let rows: Vec<(usize, &mut [f64])> = data.chunks_mut(nx).enumerate().collect();
                let eval = |j: usize, row: &mut [f64]| {
                    let y = j as f64 * hy;
                    for (i, v) in row.iter_mut().enumerate() {
                        *v = self.log_nu_2d(omega, i as f64 * hx, y);
                    }
                };
                if ny * nx >= mgd_tensor::PAR_THRESHOLD {
                    use rayon::prelude::*;
                    rows.into_par_iter().for_each(|(j, row)| eval(j, row));
                } else {
                    rows.into_iter().for_each(|(j, row)| eval(j, row));
                }
                out
            }
            [nz, ny, nx] => {
                let (nz, ny, nx) = (*nz, *ny, *nx);
                let mut out = Tensor::zeros([nz, ny, nx]);
                let hx = 1.0 / (nx - 1) as f64;
                let hy = 1.0 / (ny - 1) as f64;
                let hz = 1.0 / (nz - 1) as f64;
                let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
                maybe_par_for(nz * ny, nx, |jk| {
                    let k = jk / ny;
                    let j = jk % ny;
                    let z = k as f64 * hz;
                    let y = j as f64 * hy;
                    // SAFETY: each (k, j) pair owns the disjoint row
                    // [jk*nx, (jk+1)*nx) of the output buffer.
                    let row = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(jk * nx), nx) };
                    for (i, v) in row.iter_mut().enumerate() {
                        *v = self.log_nu_3d(omega, i as f64 * hx, y, z);
                    }
                });
                out
            }
            _ => panic!("rasterize_log expects 2 or 3 dims, got {dims:?}"),
        }
    }

    /// Rasterizes ν = exp(log ν) onto grid nodes (see [`Self::rasterize_log`]).
    pub fn rasterize(&self, omega: &[f64], dims: &[usize]) -> Tensor {
        let mut t = self.rasterize_log(omega, dims);
        t.map_inplace(f64::exp);
        t
    }
}

/// Raw-pointer wrapper so disjoint row writes can cross the rayon boundary.
struct SendPtr(*mut f64);

impl SendPtr {
    /// Returns the pointer; a method (not field access) so edition-2021
    /// closures capture the Sync wrapper rather than the raw pointer.
    fn get(&self) -> *mut f64 {
        self.0
    }
}
// SAFETY: only used to derive per-row disjoint slices inside maybe_par_for.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    const W: [f64; 4] = [0.3105, 1.5386, 0.0932, -1.2442]; // paper Table 3 ω

    #[test]
    fn lambda_matches_formula() {
        let m = DiffusivityModel::paper();
        for (i, &a) in PAPER_MODES.iter().enumerate() {
            assert!((m.lambda[i] - 1.0 / (1.0 + 0.25 * a * a)).abs() < 1e-15);
        }
    }

    #[test]
    fn nu_positive_everywhere() {
        let m = DiffusivityModel::paper();
        for &omega0 in &[-3.0, 0.0, 3.0] {
            let om = [omega0, -3.0, 3.0, -3.0];
            for i in 0..20 {
                for j in 0..20 {
                    let v = m.nu_2d(&om, i as f64 / 19.0, j as f64 / 19.0);
                    assert!(v > 0.0 && v.is_finite());
                }
            }
        }
    }

    #[test]
    fn zero_omega_gives_unit_nu() {
        let m = DiffusivityModel::paper();
        assert_eq!(m.nu_2d(&[0.0; 4], 0.3, 0.7), 1.0);
        assert_eq!(m.nu_3d(&[0.0; 4], 0.3, 0.7, 0.1), 1.0);
    }

    #[test]
    fn extrude_constant_in_z() {
        let m = DiffusivityModel::paper_extruded();
        let a = m.nu_3d(&W, 0.4, 0.6, 0.0);
        let b = m.nu_3d(&W, 0.4, 0.6, 0.77);
        assert_eq!(a, b);
        assert_eq!(a, m.nu_2d(&W, 0.4, 0.6));
    }

    #[test]
    fn separable_z_varies_and_is_bounded_like_2d() {
        let m = DiffusivityModel::paper();
        let a = m.log_nu_3d(&W, 0.4, 0.6, 0.1);
        let b = m.log_nu_3d(&W, 0.4, 0.6, 0.9);
        assert!((a - b).abs() > 1e-12, "z must vary");
        // Exponent magnitude stays within the 2D worst case bound
        // Σ |ω| λ s² (since |ξζ/s| ≤ s matches the 2D |ξη| ≤ s² bound).
        let bound: f64 = (0..4)
            .map(|i| 3.0 * m.lambda[i] * (1.0 + 0.25 * m.a[i] * m.a[i]))
            .sum();
        for k in 0..10 {
            let v = m.log_nu_3d(&W, 0.3, k as f64 / 9.0, 0.8).abs();
            assert!(v <= bound);
        }
    }

    #[test]
    fn rasterize_2d_matches_pointwise_eval() {
        let m = DiffusivityModel::paper();
        let t = m.rasterize_log(&W, &[5, 9]);
        assert_eq!(t.dims(), &[5, 9]);
        for j in 0..5 {
            for i in 0..9 {
                let want = m.log_nu_2d(&W, i as f64 / 8.0, j as f64 / 4.0);
                assert!((t.at(&[j, i]) - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn rasterize_3d_matches_pointwise_eval() {
        let m = DiffusivityModel::paper();
        let t = m.rasterize_log(&W, &[4, 5, 6]);
        assert_eq!(t.dims(), &[4, 5, 6]);
        for k in 0..4 {
            for j in 0..5 {
                for i in 0..6 {
                    let want = m.log_nu_3d(&W, i as f64 / 5.0, j as f64 / 4.0, k as f64 / 3.0);
                    assert!((t.at(&[k, j, i]) - want).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn rasterize_exp_is_exp_of_log() {
        let m = DiffusivityModel::paper();
        let lg = m.rasterize_log(&W, &[8, 8]);
        let nu = m.rasterize(&W, &[8, 8]);
        for i in 0..nu.len() {
            assert!((nu[i] - lg[i].exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn nu_range_reaches_paper_magnitudes() {
        // Paper Table 4 shows ν fields spanning up to O(100..1000); check an
        // extreme ω produces a dynamic range of at least ~100.
        let m = DiffusivityModel::paper();
        let t = m.rasterize(&[3.0, 3.0, 3.0, -3.0], &[64, 64]);
        assert!(t.max() / t.min() > 100.0);
    }
}
