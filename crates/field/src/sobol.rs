//! Sobol quasi-random sequence (gray-code construction).
//!
//! Built from scratch: direction numbers follow the Joe–Kuo "new-joe-kuo-6"
//! table for the first 16 dimensions, which comfortably covers the paper's
//! 4-dimensional parameter space ω ∈ [−3, 3]⁴ (§2.2.1, §4.1).
//!
//! The gray-code variant updates point `n` from point `n−1` by XOR-ing a
//! single direction integer, making generation O(d) per point.

/// Number of bits of precision in the generated points.
const BITS: u32 = 32;

/// Joe–Kuo direction-number seeds: `(s, a, m[0..s])` for dimensions 2..=16.
/// Dimension 1 is the van der Corput sequence (all m = 1).
const JOE_KUO: &[(u32, u32, &[u32])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 1, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
];

/// Maximum supported dimensionality.
pub const MAX_DIM: usize = JOE_KUO.len() + 1;

/// A Sobol sequence generator over `[0, 1)^d`.
///
/// The point with index 0 (the all-zeros corner) is skipped by default, as
/// is conventional when the sequence parameterizes physical fields: index
/// `i` of [`Sobol::next_point`] therefore corresponds to Sobol index `i+1`.
#[derive(Clone, Debug)]
pub struct Sobol {
    dim: usize,
    /// Direction integers, `v[j][k]` for dimension j, bit k.
    v: Vec<[u32; BITS as usize]>,
    /// Current gray-code state per dimension.
    x: Vec<u32>,
    /// Index of the next point to emit (Sobol index, 1-based after skip).
    count: u64,
}

impl Sobol {
    /// Creates a generator for `dim` dimensions (`1 ..= MAX_DIM`).
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=MAX_DIM).contains(&dim),
            "Sobol supports 1..={MAX_DIM} dims, got {dim}"
        );
        let mut v = Vec::with_capacity(dim);
        // Dimension 1: van der Corput, v_k = 2^(31-k).
        let mut v1 = [0u32; BITS as usize];
        for (k, vk) in v1.iter_mut().enumerate() {
            *vk = 1u32 << (BITS - 1 - k as u32);
        }
        v.push(v1);
        for d in 1..dim {
            let (s, a, m) = JOE_KUO[d - 1];
            let s = s as usize;
            let mut vd = [0u32; BITS as usize];
            for k in 0..s.min(BITS as usize) {
                debug_assert!(m[k] % 2 == 1, "direction seeds must be odd");
                vd[k] = m[k] << (BITS - 1 - k as u32);
            }
            for k in s..BITS as usize {
                // Recurrence: v_k = v_{k-s} ^ (v_{k-s} >> s) ^ sum of taps.
                let mut val = vd[k - s] ^ (vd[k - s] >> s);
                for i in 1..s {
                    if (a >> (s - 1 - i)) & 1 == 1 {
                        val ^= vd[k - i];
                    }
                }
                vd[k] = val;
            }
            v.push(vd);
        }
        Sobol {
            dim,
            v,
            x: vec![0; dim],
            count: 0,
        }
    }

    /// Dimensionality of the generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Generates the next point in `[0, 1)^d`.
    pub fn next_point(&mut self) -> Vec<f64> {
        // Advance state: XOR the direction integer selected by the index of
        // the lowest zero bit of `count` (gray-code update). The first call
        // moves from Sobol index 0 to index 1, skipping the zero point.
        let c = self.count.trailing_ones() as usize;
        debug_assert!(c < BITS as usize, "sequence exhausted 2^32 points");
        for j in 0..self.dim {
            self.x[j] ^= self.v[j][c];
        }
        self.count += 1;
        let scale = 1.0 / (1u64 << BITS) as f64;
        self.x.iter().map(|&xi| xi as f64 * scale).collect()
    }

    /// Generates `n` points as a flat row-major `n x dim` buffer.
    pub fn take(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }

    /// Generates `n` points affinely mapped into the box `[lo, hi)^d`.
    pub fn take_in_box(&mut self, n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
        let w = hi - lo;
        (0..n)
            .map(|_| self.next_point().into_iter().map(|u| lo + w * u).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim1_is_van_der_corput() {
        let mut s = Sobol::new(1);
        let pts: Vec<f64> = (0..7).map(|_| s.next_point()[0]).collect();
        // Gray-code ordering of the van der Corput sequence.
        assert_eq!(pts, vec![0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125]);
    }

    #[test]
    fn first_point_is_half_in_all_dims() {
        let mut s = Sobol::new(8);
        let p = s.next_point();
        assert!(p.iter().all(|&x| (x - 0.5).abs() < 1e-12), "{p:?}");
    }

    #[test]
    fn points_in_unit_box() {
        let mut s = Sobol::new(MAX_DIM);
        for _ in 0..1000 {
            let p = s.next_point();
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn one_d_stratification() {
        // The first 2^k points (after the skipped zero) of each dimension,
        // together with 0, hit every dyadic interval of width 2^-k once.
        for d in 0..4usize {
            let mut s = Sobol::new(d + 1);
            let k = 4usize;
            let n = (1 << k) - 1; // plus the implicit zero point = 2^k values
            let mut bins = vec![0usize; 1 << k];
            bins[0] += 1; // the skipped zero point
            for _ in 0..n {
                let p = s.next_point();
                bins[(p[d] * (1 << k) as f64) as usize] += 1;
            }
            assert!(bins.iter().all(|&b| b == 1), "dim {d}: {bins:?}");
        }
    }

    #[test]
    fn two_d_low_discrepancy_beats_grid_corner() {
        // Crude discrepancy check: counts in the 4 quadrants of [0,1)^2
        // should be balanced within 2 for 64 points.
        let mut s = Sobol::new(2);
        let mut quad = [0usize; 4];
        for _ in 0..64 {
            let p = s.next_point();
            let q = (p[0] >= 0.5) as usize * 2 + (p[1] >= 0.5) as usize;
            quad[q] += 1;
        }
        for &q in &quad {
            assert!((14..=18).contains(&q), "{quad:?}");
        }
    }

    #[test]
    fn take_in_box_maps_range() {
        let mut s = Sobol::new(4);
        for p in s.take_in_box(100, -3.0, 3.0) {
            assert!(p.iter().all(|&x| (-3.0..3.0).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn too_many_dims_panics() {
        let _ = Sobol::new(MAX_DIM + 1);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = Sobol::new(4).take(10);
        let b: Vec<_> = Sobol::new(4).take(10);
        assert_eq!(a, b);
    }
}
