//! Parametric anisotropy: turn the scalar KL-expansion field into a
//! symmetric SPD tensor field.
//!
//! The anisotropic workload (Greenfeld et al.'s "diffusion with strongly
//! varying/anisotropic coefficients") keeps the paper's ω-parameterized
//! scalar field `s(x; ω)` as the *strong* principal diffusivity and derives
//! a rotated tensor from two extra knobs:
//!
//! ```text
//! T(x) = R(θ) · diag(s, s/ratio) · R(θ)ᵀ          (2D)
//! ```
//!
//! with `R(θ)` the in-plane rotation. In 3D the x–y plane rotates the same
//! way and the z-axis keeps the scalar value (`T_zz = s`, `T_xz = T_yz =
//! 0`) — an "extruded" anisotropy matching the extruded 3D scalar model.
//! Since `s > 0` and `ratio ≥ 1`, every nodal tensor is SPD by
//! construction; the FEM layer re-validates at system build.
//!
//! Components are emitted in `mgd_fem`'s coordinate order (x-first,
//! diagonal then off-diagonals): 2D `[T_xx, T_yy, T_xy]`, 3D
//! `[T_xx, T_yy, T_zz, T_xy, T_xz, T_yz]`.

use crate::dataset::FieldError;
use serde::{Deserialize, Serialize};

/// Anisotropy parameters applied on top of a scalar diffusivity model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Anisotropy {
    /// Strong-to-weak principal-diffusivity ratio (≥ 1; 1 = isotropic).
    pub ratio: f64,
    /// In-plane rotation of the strong axis, radians.
    pub theta: f64,
}

impl Anisotropy {
    /// Validated constructor.
    pub fn new(ratio: f64, theta: f64) -> Result<Self, FieldError> {
        let a = Anisotropy { ratio, theta };
        a.validate()?;
        Ok(a)
    }

    /// Rejects ratios below 1 (would swap strong/weak axes and break the
    /// SPD-by-construction argument at ratio ≤ 0) and non-finite knobs.
    pub fn validate(&self) -> Result<(), FieldError> {
        if !self.ratio.is_finite() || self.ratio < 1.0 {
            return Err(FieldError::InvalidAnisotropy {
                reason: "ratio must be finite and >= 1",
            });
        }
        if !self.theta.is_finite() {
            return Err(FieldError::InvalidAnisotropy {
                reason: "theta must be finite",
            });
        }
        Ok(())
    }

    /// Symmetric-tensor components per node for `rank` spatial dims.
    pub fn ncomp(rank: usize) -> usize {
        rank * (rank + 1) / 2
    }

    /// Writes the tensor components for scalar value `s` into
    /// `out[..ncomp(rank)]` (coordinate order, see module docs).
    ///
    /// `ratio == 1.0` short-circuits to the exact isotropic tensor
    /// `[s, s(, s), 0, …]` so trigonometric rounding can never make an
    /// "isotropic" configuration differ from `diag(s)`.
    pub fn tensor_components(&self, s: f64, rank: usize, out: &mut [f64]) {
        let nc = Self::ncomp(rank);
        debug_assert!(out.len() >= nc);
        if self.ratio == 1.0 {
            out[..nc].iter_mut().for_each(|v| *v = 0.0);
            for v in out.iter_mut().take(rank) {
                *v = s;
            }
            return;
        }
        let a = s;
        let b = s / self.ratio;
        let (sn, cs) = self.theta.sin_cos();
        match rank {
            2 => {
                out[0] = a * cs * cs + b * sn * sn;
                out[1] = a * sn * sn + b * cs * cs;
                out[2] = (a - b) * cs * sn;
            }
            3 => {
                out[0] = a * cs * cs + b * sn * sn;
                out[1] = a * sn * sn + b * cs * cs;
                out[2] = s;
                out[3] = (a - b) * cs * sn;
                out[4] = 0.0;
                out[5] = 0.0;
            }
            _ => unreachable!("rank must be 2 or 3"),
        }
    }

    /// Stable code folded into cache keys (quantization matches the
    /// serving layer's `+0.0` normalization of signed zero).
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0x000a_1507_e4a6_e150_u64;
        h ^= (self.ratio + 0.0).to_bits();
        h = h.wrapping_mul(PRIME);
        h ^= (self.theta + 0.0).to_bits();
        h.wrapping_mul(PRIME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_ratio_is_exact_diagonal() {
        let a = Anisotropy::new(1.0, 0.7).unwrap();
        let mut t = [0.0; 6];
        a.tensor_components(2.5, 2, &mut t);
        assert_eq!(&t[..3], &[2.5, 2.5, 0.0]);
        a.tensor_components(2.5, 3, &mut t);
        assert_eq!(&t, &[2.5, 2.5, 2.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rotation_preserves_eigenvalues() {
        let a = Anisotropy::new(4.0, 0.6).unwrap();
        let mut t = [0.0; 3];
        a.tensor_components(2.0, 2, &mut t);
        // trace = a + b, det = a*b for eigenvalues (2.0, 0.5).
        assert!((t[0] + t[1] - 2.5).abs() < 1e-12);
        assert!((t[0] * t[1] - t[2] * t[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_d_extrudes_z() {
        let a = Anisotropy::new(3.0, -0.4).unwrap();
        let mut t = [0.0; 6];
        a.tensor_components(1.5, 3, &mut t);
        assert_eq!(t[2], 1.5);
        assert_eq!(t[4], 0.0);
        assert_eq!(t[5], 0.0);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(Anisotropy::new(0.5, 0.0).is_err());
        assert!(Anisotropy::new(f64::NAN, 0.0).is_err());
        assert!(Anisotropy::new(2.0, f64::INFINITY).is_err());
        assert!(Anisotropy::new(1.0, 0.0).is_ok());
    }

    #[test]
    fn fingerprints_distinguish_knobs() {
        let a = Anisotropy::new(2.0, 0.3).unwrap();
        let b = Anisotropy::new(2.0, 0.4).unwrap();
        let c = Anisotropy::new(3.0, 0.3).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            Anisotropy::new(2.0, 0.3).unwrap().fingerprint()
        );
    }
}
