//! Dimension-erased Poisson systems and multigrid hierarchies.
//!
//! The engine side of the project works with runtime-shaped fields
//! (`dims: &[usize]`, 2D or 3D) while `mgd-fem` is generic over
//! `const D: usize`. [`ErasedSystem`] / [`ErasedHierarchy`] bridge the
//! two with the same convention as the training loss: 2D dims are
//! `[ny, nx]`, 3D dims are `[nz, ny, nx]`, and the paper's boundary
//! condition (`u = 1` on the `x = 0` face, `u = 0` on `x = 1`) is
//! imposed through `Dirichlet::x_faces`.

use mgd_fem::bc::BoundarySpec;
use mgd_fem::error::FemError;
use mgd_fem::grid::Grid;
use mgd_fem::hierarchy::{GridHierarchy, HierarchyOptions};
use mgd_fem::mixed::MixedHierarchy;
use mgd_fem::operator::load_vector;
use mgd_fem::pcg::{JacobiPrecond, LinearOp, Precond};
use mgd_fem::pde::PdeOperator;
use mgd_fem::system::PoissonSystem;
use mgd_tensor::Precision;
use std::fmt;

/// Errors raised by hybrid solver construction.
#[derive(Clone, Debug, PartialEq)]
pub enum HybridError {
    /// Unsupported or inconsistent input shapes.
    InvalidInput(String),
    /// A FEM-layer construction failure.
    Fem(FemError),
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::InvalidInput(m) => write!(f, "invalid hybrid solver input: {m}"),
            HybridError::Fem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HybridError {}

impl From<FemError> for HybridError {
    fn from(e: FemError) -> Self {
        HybridError::Fem(e)
    }
}

/// A Poisson system over runtime-shaped (2D or 3D) grids.
#[derive(Debug)]
pub enum ErasedSystem {
    /// `dims = [ny, nx]`.
    D2(PoissonSystem<2>),
    /// `dims = [nz, ny, nx]`.
    D3(PoissonSystem<3>),
}

impl ErasedSystem {
    /// Builds the paper's BVP (`−∇·(ν∇u) = 0`, `u = 1` at `x = 0`,
    /// `u = 0` at `x = 1`) on a grid of the given dims.
    pub fn poisson(dims: &[usize], nu: &[f64]) -> Result<Self, HybridError> {
        Self::with_operator(dims, PdeOperator::Poisson, nu, &BoundarySpec::default())
    }

    /// Builds a system for an arbitrary operator and boundary spec. The
    /// coefficient block is component-major (`ncomp · Π dims` values);
    /// tensor operators are SPD-validated node-by-node.
    pub fn with_operator(
        dims: &[usize],
        op: PdeOperator,
        coeff: &[f64],
        boundary: &BoundarySpec,
    ) -> Result<Self, HybridError> {
        boundary.validate()?;
        match dims {
            [ny, nx] => {
                let grid: Grid<2> = Grid::new([*ny, *nx]);
                let bc = boundary.build(&grid);
                Ok(ErasedSystem::D2(PoissonSystem::with_operator(
                    grid,
                    op,
                    coeff.to_vec(),
                    bc,
                )?))
            }
            [nz, ny, nx] => {
                let grid: Grid<3> = Grid::new([*nz, *ny, *nx]);
                let bc = boundary.build(&grid);
                Ok(ErasedSystem::D3(PoissonSystem::with_operator(
                    grid,
                    op,
                    coeff.to_vec(),
                    bc,
                )?))
            }
            other => Err(HybridError::InvalidInput(format!(
                "expected 2 or 3 spatial dims, got {other:?}"
            ))),
        }
    }

    /// The variational operator this system discretizes.
    pub fn op(&self) -> PdeOperator {
        match self {
            ErasedSystem::D2(s) => s.op,
            ErasedSystem::D3(s) => s.op,
        }
    }

    /// Assembles the load vector `F` for a nodal forcing `f` (the rhs that
    /// [`crate::solve_certified`] certifies against).
    pub fn load_vector(&self, f: &[f64]) -> Result<Vec<f64>, HybridError> {
        let nn = self.num_nodes();
        if f.len() != nn {
            return Err(HybridError::InvalidInput(format!(
                "forcing has length {}, expected {nn}",
                f.len()
            )));
        }
        let mut rhs = vec![0.0; nn];
        match self {
            ErasedSystem::D2(s) => load_vector(&s.grid, &s.basis, f, &mut rhs),
            ErasedSystem::D3(s) => load_vector(&s.grid, &s.basis, f, &mut rhs),
        }
        Ok(rhs)
    }

    /// Nodes in the system.
    pub fn num_nodes(&self) -> usize {
        match self {
            ErasedSystem::D2(s) => s.num_nodes(),
            ErasedSystem::D3(s) => s.num_nodes(),
        }
    }

    /// Nodes per axis.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            ErasedSystem::D2(s) => s.grid.n.to_vec(),
            ErasedSystem::D3(s) => s.grid.n.to_vec(),
        }
    }

    /// ν on the finest grid.
    pub fn nu(&self) -> &[f64] {
        match self {
            ErasedSystem::D2(s) => &s.nu,
            ErasedSystem::D3(s) => &s.nu,
        }
    }

    /// Writes prescribed Dirichlet values into `u`.
    pub fn impose_bc(&self, u: &mut [f64]) {
        match self {
            ErasedSystem::D2(s) => s.impose_bc(u),
            ErasedSystem::D3(s) => s.impose_bc(u),
        }
    }

    /// `r = mask(rhs − K u)`.
    pub fn residual_into(&self, u: &[f64], rhs: &[f64], r: &mut [f64]) {
        match self {
            ErasedSystem::D2(s) => s.residual_into(u, rhs, r),
            ErasedSystem::D3(s) => s.residual_into(u, rhs, r),
        }
    }

    /// True residual norm ‖mask(rhs − K u)‖₂, recomputed from scratch.
    pub fn residual_norm(&self, u: &[f64], rhs: &[f64]) -> f64 {
        match self {
            ErasedSystem::D2(s) => s.residual_norm(u, rhs),
            ErasedSystem::D3(s) => s.residual_norm(u, rhs),
        }
    }

    /// The Jacobi preconditioner of this system.
    pub fn jacobi(&self) -> JacobiPrecond {
        match self {
            ErasedSystem::D2(s) => JacobiPrecond::of(s),
            ErasedSystem::D3(s) => JacobiPrecond::of(s),
        }
    }
}

impl LinearOp for ErasedSystem {
    fn len(&self) -> usize {
        self.num_nodes()
    }
    fn apply(&self, u: &[f64], out: &mut [f64]) {
        match self {
            ErasedSystem::D2(s) => s.apply(u, out),
            ErasedSystem::D3(s) => s.apply(u, out),
        }
    }
    fn mask(&self, v: &mut [f64]) {
        match self {
            ErasedSystem::D2(s) => s.mask(v),
            ErasedSystem::D3(s) => s.mask(v),
        }
    }
}

/// A dimension-erased [`GridHierarchy`], optionally carrying the
/// mixed-precision ([`MixedHierarchy`]) V-cycle as its preconditioner.
pub enum ErasedHierarchy {
    /// 2D hierarchy.
    D2(GridHierarchy<2>),
    /// 3D hierarchy.
    D3(GridHierarchy<3>),
    /// 2D hierarchy with an f32 V-cycle (f64 coarsest solve).
    D2Mixed(MixedHierarchy<2>),
    /// 3D hierarchy with an f32 V-cycle (f64 coarsest solve).
    D3Mixed(MixedHierarchy<3>),
}

impl ErasedHierarchy {
    /// Builds the V-cycle hierarchy matching `sys` (full f64 cycle).
    pub fn build(sys: &ErasedSystem, opts: HierarchyOptions) -> Result<Self, HybridError> {
        Self::build_with_precision(sys, opts, Precision::F64)
    }

    /// Builds the hierarchy with a precision policy. [`Precision::Mixed`]
    /// selects the f32 V-cycle preconditioner (setup and coarsest solve
    /// stay f64); the outer PCG and all residual certificates remain f64
    /// regardless, so solution accuracy is unaffected — only convergence
    /// rate can differ. `F64` and `F32` both build the plain f64 cycle:
    /// `F32` is a serving-side (forward-pass) policy and does not touch
    /// the certified solver.
    pub fn build_with_precision(
        sys: &ErasedSystem,
        opts: HierarchyOptions,
        precision: Precision,
    ) -> Result<Self, HybridError> {
        Ok(match (sys, precision) {
            (ErasedSystem::D2(s), Precision::Mixed) => ErasedHierarchy::D2Mixed(
                MixedHierarchy::build_with_operator(s.grid, s.op, &s.nu, &s.bc, opts)?,
            ),
            (ErasedSystem::D3(s), Precision::Mixed) => ErasedHierarchy::D3Mixed(
                MixedHierarchy::build_with_operator(s.grid, s.op, &s.nu, &s.bc, opts)?,
            ),
            (ErasedSystem::D2(s), _) => ErasedHierarchy::D2(GridHierarchy::build_with_operator(
                s.grid, s.op, &s.nu, &s.bc, opts,
            )?),
            (ErasedSystem::D3(s), _) => ErasedHierarchy::D3(GridHierarchy::build_with_operator(
                s.grid, s.op, &s.nu, &s.bc, opts,
            )?),
        })
    }

    /// Number of levels (level 0 is the finest).
    pub fn num_levels(&self) -> usize {
        match self {
            ErasedHierarchy::D2(h) => h.num_levels(),
            ErasedHierarchy::D3(h) => h.num_levels(),
            ErasedHierarchy::D2Mixed(h) => h.inner().num_levels(),
            ErasedHierarchy::D3Mixed(h) => h.inner().num_levels(),
        }
    }

    /// Nodes per axis at level `l`.
    pub fn dims_at(&self, l: usize) -> Vec<usize> {
        match self {
            ErasedHierarchy::D2(h) => h.dims_at(l).to_vec(),
            ErasedHierarchy::D3(h) => h.dims_at(l).to_vec(),
            ErasedHierarchy::D2Mixed(h) => h.inner().dims_at(l).to_vec(),
            ErasedHierarchy::D3Mixed(h) => h.inner().dims_at(l).to_vec(),
        }
    }

    /// ν sampled down to level `l`.
    pub fn nu_at(&self, l: usize) -> &[f64] {
        match self {
            ErasedHierarchy::D2(h) => h.nu_at(l),
            ErasedHierarchy::D3(h) => h.nu_at(l),
            ErasedHierarchy::D2Mixed(h) => h.inner().nu_at(l),
            ErasedHierarchy::D3Mixed(h) => h.inner().nu_at(l),
        }
    }

    /// Multilinear sample of a finest-level field at level `l` nodes.
    pub fn sample_to_level(&self, l: usize, finest: &[f64]) -> Vec<f64> {
        match self {
            ErasedHierarchy::D2(h) => h.sample_to_level(l, finest),
            ErasedHierarchy::D3(h) => h.sample_to_level(l, finest),
            ErasedHierarchy::D2Mixed(h) => h.inner().sample_to_level(l, finest),
            ErasedHierarchy::D3Mixed(h) => h.inner().sample_to_level(l, finest),
        }
    }

    /// Prolongs a level-`l` field up to the finest level (masked).
    pub fn prolong_to_finest(&self, l: usize, field: &[f64]) -> Vec<f64> {
        match self {
            ErasedHierarchy::D2(h) => h.prolong_to_finest(l, field),
            ErasedHierarchy::D3(h) => h.prolong_to_finest(l, field),
            ErasedHierarchy::D2Mixed(h) => h.inner().prolong_to_finest(l, field),
            ErasedHierarchy::D3Mixed(h) => h.inner().prolong_to_finest(l, field),
        }
    }
}

impl Precond for ErasedHierarchy {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            ErasedHierarchy::D2(h) => h.apply(r, z),
            ErasedHierarchy::D3(h) => h.apply(r, z),
            ErasedHierarchy::D2Mixed(h) => h.apply(r, z),
            ErasedHierarchy::D3Mixed(h) => h.apply(r, z),
        }
    }
}
