//! Certified learned-multigrid solving (`mgd_hybrid`).
//!
//! The repo has two answer paths with opposite failure modes: FEM
//! multigrid (exact but pays full price per query) and U-Net surrogate
//! inference (fast but carries no error bound). This crate merges them
//! the way learned-multigrid work (Greenfeld et al., MGCNN) does: the
//! learned component runs *inside* a classical iteration whose progress
//! is measured by the **true residual**, so the network can only
//! accelerate the solve — never corrupt the answer.
//!
//! Three composable strategies behind the [`HybridStrategy`] trait:
//!
//! | strategy | learned role | polish |
//! |---|---|---|
//! | [`StrategyKind::InitialGuess`] | seeds the iterate | MG-PCG |
//! | [`StrategyKind::CoarseCorrector`] | line-searched correction at a chosen V-cycle level, every outer step | restarted MG-PCG blocks |
//! | [`StrategyKind::CgPolish`] | seeds the iterate | Jacobi-CG |
//!
//! plus the no-network [`StrategyKind::PureMultigrid`] baseline. All run
//! under the [`certify::solve_certified`] driver: per-step true-residual
//! tracking, a stall detector, and automatic demotion to pure FEM stages
//! whenever the learned component is unavailable, stalls, or emits
//! non-finite values. Every [`CertifiedSolution`] carries a residual norm
//! recomputed from scratch on the returned iterate.
//!
//! The multigrid machinery comes from `mgd_fem::hierarchy`, which — unlike
//! the classical `GmgSolver` — also coarsens the `2^k`-node grids the
//! network is trained on (non-nested interpolation transfers).

pub mod certify;
pub mod strategy;
pub mod system;

pub use certify::{solve_certified, CertifiedSolution, CertifyOptions, StallPolicy};
pub use strategy::{
    stage_chain, CoarseCorrectorStage, HybridStrategy, JacobiCgStage, MgPcgStage, NoSurrogate,
    SolveCtx, StageStatus, StrategyKind, Surrogate,
};
pub use system::{ErasedHierarchy, ErasedSystem, HybridError};

#[cfg(test)]
mod tests {
    use super::*;
    use mgd_fem::hierarchy::HierarchyOptions;

    /// Variable diffusivity over a dims-shaped grid (x is the fastest axis).
    fn nu_field(dims: &[usize]) -> Vec<f64> {
        let n: usize = dims.iter().product();
        let nx = dims[dims.len() - 1];
        (0..n)
            .map(|i| {
                let x = (i % nx) as f64 / (nx - 1) as f64;
                let y = (i / nx) as f64 / (n / nx) as f64;
                ((2.5 * x).sin() * (1.7 * y).cos()).mul_add(0.5, 1.2)
            })
            .collect()
    }

    fn setup(dims: &[usize]) -> (ErasedSystem, ErasedHierarchy) {
        let nu = nu_field(dims);
        let sys = ErasedSystem::poisson(dims, &nu).unwrap();
        let hier = ErasedHierarchy::build(&sys, HierarchyOptions::default()).unwrap();
        (sys, hier)
    }

    /// A crude-but-finite oracle: the 1D profile u = 1 − x at any dims.
    fn profile_surrogate(dims: &[usize], _nu: &[f64]) -> Option<Vec<f64>> {
        let n: usize = dims.iter().product();
        let nx = dims[dims.len() - 1];
        Some(
            (0..n)
                .map(|i| 1.0 - (i % nx) as f64 / (nx - 1) as f64)
                .collect(),
        )
    }

    /// A sabotaged oracle: every value is NaN (as from NaN weights).
    fn nan_surrogate(dims: &[usize], _nu: &[f64]) -> Option<Vec<f64>> {
        Some(vec![f64::NAN; dims.iter().product()])
    }

    #[test]
    fn baseline_certifies_on_power_of_two_grid() {
        let (sys, hier) = setup(&[32, 32]);
        let opts = CertifyOptions::default();
        let sol = solve_certified(
            &sys,
            &hier,
            &NoSurrogate,
            StrategyKind::PureMultigrid,
            None,
            &opts,
        );
        assert!(sol.converged, "{:?}", sol.residual_history);
        assert!(!sol.fell_back);
        assert!(sol.rel_residual <= opts.tol);
        assert_eq!(sol.strategy_used, "pure-multigrid");
        // The certificate is a recomputed true residual of the returned u.
        let rhs = vec![0.0; sys.num_nodes()];
        let check = sys.residual_norm(&sol.u, &rhs);
        assert!((check - sol.residual_norm).abs() <= 1e-12 * (1.0 + check));
    }

    #[test]
    fn residual_history_is_monotone() {
        let (sys, hier) = setup(&[32, 32]);
        for kind in [
            StrategyKind::PureMultigrid,
            StrategyKind::InitialGuess,
            StrategyKind::CoarseCorrector { level: 0 },
            StrategyKind::CgPolish,
        ] {
            let sol = solve_certified(
                &sys,
                &hier,
                &profile_surrogate,
                kind,
                None,
                &CertifyOptions::default(),
            );
            assert!(sol.converged, "{kind:?}");
            for w in sol.residual_history.windows(2) {
                assert!(w[1] <= w[0], "{kind:?}: residual grew {w:?}");
            }
        }
    }

    #[test]
    fn strategies_agree_on_the_solution() {
        let (sys, hier) = setup(&[32, 32]);
        let opts = CertifyOptions {
            tol: 1e-10,
            ..Default::default()
        };
        let kinds = [
            StrategyKind::PureMultigrid,
            StrategyKind::InitialGuess,
            StrategyKind::CoarseCorrector { level: 1 },
            StrategyKind::CgPolish,
        ];
        let sols: Vec<_> = kinds
            .iter()
            .map(|&k| solve_certified(&sys, &hier, &profile_surrogate, k, None, &opts))
            .collect();
        let norm0: f64 = sols[0].u.iter().map(|x| x * x).sum::<f64>().sqrt();
        for (k, s) in kinds.iter().zip(&sols) {
            assert!(s.converged, "{k:?}");
            let diff: f64 =
                s.u.iter()
                    .zip(&sols[0].u)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
            assert!(diff / norm0 < 1e-6, "{k:?} diverges: rel {}", diff / norm0);
        }
    }

    #[test]
    fn nan_surrogate_demotes_and_still_converges() {
        let (sys, hier) = setup(&[32, 32]);
        let opts = CertifyOptions::default();
        for kind in [
            StrategyKind::InitialGuess,
            StrategyKind::CoarseCorrector { level: 0 },
            StrategyKind::CgPolish,
        ] {
            let sol = solve_certified(&sys, &hier, &nan_surrogate, kind, None, &opts);
            assert!(sol.fell_back, "{kind:?} should demote on NaN prediction");
            assert!(sol.converged, "{kind:?} fallback must still hit tol");
            assert!(sol.rel_residual <= opts.tol);
            assert!(sol.u.iter().all(|x| x.is_finite()));
            assert_eq!(sol.strategy_used, "pure-multigrid");
        }
    }

    #[test]
    fn unavailable_surrogate_runs_pure_fallback() {
        let (sys, hier) = setup(&[16, 16]);
        let sol = solve_certified(
            &sys,
            &hier,
            &NoSurrogate,
            StrategyKind::InitialGuess,
            None,
            &CertifyOptions::default(),
        );
        assert!(sol.fell_back);
        assert!(sol.converged);
    }

    #[test]
    fn good_guess_saves_iterations() {
        let (sys, hier) = setup(&[32, 32]);
        let opts = CertifyOptions::default();
        // Oracle = the exact discrete solution (from a baseline solve).
        let exact = solve_certified(
            &sys,
            &hier,
            &NoSurrogate,
            StrategyKind::PureMultigrid,
            None,
            &CertifyOptions { tol: 1e-12, ..opts },
        );
        assert!(exact.converged);
        let u_star = exact.u.clone();
        let oracle =
            move |_dims: &[usize], _nu: &[f64]| -> Option<Vec<f64>> { Some(u_star.clone()) };
        let seeded = solve_certified(
            &sys,
            &hier,
            &oracle,
            StrategyKind::InitialGuess,
            None,
            &opts,
        );
        let baseline = solve_certified(
            &sys,
            &hier,
            &NoSurrogate,
            StrategyKind::PureMultigrid,
            None,
            &opts,
        );
        assert!(seeded.converged && !seeded.fell_back);
        assert!(
            seeded.iterations < baseline.iterations,
            "seeded {} vs baseline {}",
            seeded.iterations,
            baseline.iterations
        );
    }

    #[test]
    fn mixed_hierarchy_certifies_to_f64_tolerance() {
        // The f32 V-cycle is only a preconditioner: the certificate is an
        // f64 true residual, so Precision::Mixed must still hit the same
        // 1e-8 relative target as the full-f64 hierarchy.
        let dims = [64usize, 64];
        let nu = nu_field(&dims);
        let sys = ErasedSystem::poisson(&dims, &nu).unwrap();
        let hier = ErasedHierarchy::build_with_precision(
            &sys,
            HierarchyOptions::default(),
            mgd_tensor::Precision::Mixed,
        )
        .unwrap();
        let opts = CertifyOptions::default();
        let sol = solve_certified(
            &sys,
            &hier,
            &NoSurrogate,
            StrategyKind::PureMultigrid,
            None,
            &opts,
        );
        assert!(sol.converged, "{:?}", sol.residual_history);
        assert!(sol.rel_residual <= opts.tol);
        // The certificate is a from-scratch f64 residual of the returned u.
        let rhs = vec![0.0; sys.num_nodes()];
        let check = sys.residual_norm(&sol.u, &rhs);
        assert!((check - sol.residual_norm).abs() <= 1e-12 * (1.0 + check));
        // And the answer agrees with the all-f64 hierarchy's solve.
        let hier64 = ErasedHierarchy::build(&sys, HierarchyOptions::default()).unwrap();
        let sol64 = solve_certified(
            &sys,
            &hier64,
            &NoSurrogate,
            StrategyKind::PureMultigrid,
            None,
            &opts,
        );
        let norm: f64 = sol64.u.iter().map(|x| x * x).sum::<f64>().sqrt();
        let diff: f64 = sol
            .u
            .iter()
            .zip(&sol64.u)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(diff / norm < 1e-6, "mixed diverges: rel {}", diff / norm);
    }

    #[test]
    fn mixed_hierarchy_drives_learned_strategies_in_3d() {
        let dims = [16usize, 16, 16];
        let nu = nu_field(&dims);
        let sys = ErasedSystem::poisson(&dims, &nu).unwrap();
        let hier = ErasedHierarchy::build_with_precision(
            &sys,
            HierarchyOptions::default(),
            mgd_tensor::Precision::Mixed,
        )
        .unwrap();
        let opts = CertifyOptions::default();
        for kind in [
            StrategyKind::InitialGuess,
            StrategyKind::CoarseCorrector { level: 1 },
        ] {
            let sol = solve_certified(&sys, &hier, &profile_surrogate, kind, None, &opts);
            assert!(sol.converged, "{kind:?}");
            assert!(sol.rel_residual <= opts.tol, "{kind:?}");
        }
    }

    #[test]
    fn f64_and_f32_precisions_build_plain_hierarchies() {
        let dims = [16usize, 16];
        let nu = nu_field(&dims);
        let sys = ErasedSystem::poisson(&dims, &nu).unwrap();
        for p in [mgd_tensor::Precision::F64, mgd_tensor::Precision::F32] {
            let h = ErasedHierarchy::build_with_precision(&sys, HierarchyOptions::default(), p)
                .unwrap();
            assert!(matches!(h, ErasedHierarchy::D2(_)), "{p}");
        }
        let h = ErasedHierarchy::build_with_precision(
            &sys,
            HierarchyOptions::default(),
            mgd_tensor::Precision::Mixed,
        )
        .unwrap();
        assert!(matches!(h, ErasedHierarchy::D2Mixed(_)));
    }

    #[test]
    fn three_d_certified_solve() {
        let (sys, hier) = setup(&[16, 16, 16]);
        let opts = CertifyOptions::default();
        let sol = solve_certified(
            &sys,
            &hier,
            &profile_surrogate,
            StrategyKind::InitialGuess,
            None,
            &opts,
        );
        assert!(sol.converged);
        assert!(sol.rel_residual <= opts.tol);
    }
}
