//! Hybrid solve strategies: where the learned surrogate enters the
//! iteration.
//!
//! Every strategy advances the iterate in *outer steps*; after each step
//! the certified driver ([`crate::certify`]) recomputes the true residual
//! from scratch, so nothing a strategy does can corrupt the certificate —
//! a bad learned component only costs time before the driver demotes it.

use crate::system::{ErasedHierarchy, ErasedSystem};
use mgd_fem::pcg::{JacobiPrecond, PcgStep, PcgWorkspace};

/// A solution-estimate oracle (in practice: snapshot inference).
///
/// `guess` returns `None` when the surrogate cannot serve the requested
/// dims (e.g. a network whose pooling depth does not divide a coarse
/// level's shape); the driver treats that as "strategy unavailable" and
/// demotes. Finiteness of the returned values is checked by the caller.
pub trait Surrogate {
    /// Solution estimate for diffusivity `nu` on a grid of `dims` nodes
    /// per axis (same layout as the system field vectors).
    fn guess(&self, dims: &[usize], nu: &[f64]) -> Option<Vec<f64>>;
}

impl<F> Surrogate for F
where
    F: Fn(&[usize], &[f64]) -> Option<Vec<f64>>,
{
    fn guess(&self, dims: &[usize], nu: &[f64]) -> Option<Vec<f64>> {
        self(dims, nu)
    }
}

/// A surrogate that never answers — for running pure-FEM baselines
/// through the same certified driver.
pub struct NoSurrogate;

impl Surrogate for NoSurrogate {
    fn guess(&self, _dims: &[usize], _nu: &[f64]) -> Option<Vec<f64>> {
        None
    }
}

/// Which hybrid strategy drives the certified solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// No learned component: multigrid-preconditioned CG from the zero
    /// (BC-imposed) iterate. The certified baseline.
    PureMultigrid,
    /// Learned initial guess: snapshot inference seeds MG-PCG.
    InitialGuess,
    /// Learned coarse corrector: each outer step line-searches along the
    /// network's prediction at hierarchy level `level` (0 = finest),
    /// then polishes with a restarted MG-PCG block. The true fine-grid
    /// residual is recomputed after every application.
    CoarseCorrector {
        /// Hierarchy level the correction is predicted at.
        level: usize,
    },
    /// CG-accelerated surrogate: network predict, then Jacobi-CG polish.
    CgPolish,
}

impl StrategyKind {
    /// Stable human-readable name (also used in reports and benchmarks).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::PureMultigrid => "pure-multigrid",
            StrategyKind::InitialGuess => "initial-guess",
            StrategyKind::CoarseCorrector { .. } => "coarse-corrector",
            StrategyKind::CgPolish => "cg-polish",
        }
    }
}

/// Everything a strategy may touch during one solve.
pub struct SolveCtx<'a> {
    /// The fine-grid system.
    pub sys: &'a ErasedSystem,
    /// The multigrid hierarchy (also the V-cycle preconditioner).
    pub hier: &'a ErasedHierarchy,
    /// The learned solution oracle.
    pub surrogate: &'a dyn Surrogate,
    /// Assembled right-hand side.
    pub rhs: &'a [f64],
    /// Current iterate (Dirichlet values imposed).
    pub u: &'a mut Vec<f64>,
    /// Inner iterations per outer step.
    pub block: usize,
}

/// Result of a strategy init or step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageStatus {
    /// Keep iterating.
    Ok,
    /// The strategy cannot run here (no surrogate answer, bad shape,
    /// non-finite prediction) — demote without consuming an iteration.
    Unavailable,
    /// Krylov breakdown — demote.
    Breakdown,
}

/// One stage of the certified solve.
pub trait HybridStrategy {
    /// Stable name, reported as `strategy_used`.
    fn name(&self) -> &'static str;
    /// Called once when the stage becomes active (may seed the iterate).
    fn init(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus;
    /// One outer step: a block of inner iterations updating `ctx.u`.
    fn step(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus;
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// Fetches a finite, correctly sized surrogate guess or reports why not.
fn finite_guess(
    surrogate: &dyn Surrogate,
    dims: &[usize],
    nu: &[f64],
    expect_len: usize,
) -> Option<Vec<f64>> {
    let g = surrogate.guess(dims, nu)?;
    if g.len() != expect_len || !all_finite(&g) {
        return None;
    }
    Some(g)
}

/// MG-PCG (optionally seeded by the surrogate): strategies (baseline) and
/// (a) of the hybrid design.
pub struct MgPcgStage {
    seed: bool,
    ws: Option<PcgWorkspace>,
}

impl MgPcgStage {
    /// `seed = true` requests a learned initial guess.
    pub fn new(seed: bool) -> Self {
        MgPcgStage { seed, ws: None }
    }
}

impl HybridStrategy for MgPcgStage {
    fn name(&self) -> &'static str {
        if self.seed {
            "initial-guess"
        } else {
            "pure-multigrid"
        }
    }

    fn init(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus {
        if self.seed {
            let dims = ctx.sys.dims();
            match finite_guess(ctx.surrogate, &dims, ctx.sys.nu(), ctx.u.len()) {
                Some(g) => {
                    *ctx.u = g;
                    ctx.sys.impose_bc(ctx.u);
                }
                None => return StageStatus::Unavailable,
            }
        }
        self.ws = Some(PcgWorkspace::start(ctx.sys, ctx.hier, ctx.u, ctx.rhs));
        StageStatus::Ok
    }

    fn step(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus {
        let ws = self.ws.as_mut().expect("init before step");
        for _ in 0..ctx.block.max(1) {
            if let PcgStep::Breakdown = ws.step(ctx.sys, ctx.hier, ctx.u) {
                return StageStatus::Breakdown;
            }
        }
        StageStatus::Ok
    }
}

/// Jacobi-preconditioned CG (optionally surrogate-seeded): strategy (c)
/// when seeded, and the unconditional last-resort fallback when not.
pub struct JacobiCgStage {
    seed: bool,
    pre: Option<JacobiPrecond>,
    ws: Option<PcgWorkspace>,
}

impl JacobiCgStage {
    /// `seed = true` is the "CG-accelerated surrogate" strategy.
    pub fn new(seed: bool) -> Self {
        JacobiCgStage {
            seed,
            pre: None,
            ws: None,
        }
    }
}

impl HybridStrategy for JacobiCgStage {
    fn name(&self) -> &'static str {
        if self.seed {
            "cg-polish"
        } else {
            "jacobi-cg"
        }
    }

    fn init(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus {
        if self.seed {
            let dims = ctx.sys.dims();
            match finite_guess(ctx.surrogate, &dims, ctx.sys.nu(), ctx.u.len()) {
                Some(g) => {
                    *ctx.u = g;
                    ctx.sys.impose_bc(ctx.u);
                }
                None => return StageStatus::Unavailable,
            }
        }
        let pre = ctx.sys.jacobi();
        self.ws = Some(PcgWorkspace::start(ctx.sys, &pre, ctx.u, ctx.rhs));
        self.pre = Some(pre);
        StageStatus::Ok
    }

    fn step(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus {
        let ws = self.ws.as_mut().expect("init before step");
        let pre = self.pre.as_ref().expect("init before step");
        for _ in 0..ctx.block.max(1) {
            if let PcgStep::Breakdown = ws.step(ctx.sys, pre, ctx.u) {
                return StageStatus::Breakdown;
            }
        }
        StageStatus::Ok
    }
}

/// Learned coarse corrector — strategy (b).
///
/// Each outer step forms the correction direction
/// `d = P(N(ν_ℓ) − u|_ℓ)` from the network's prediction at hierarchy
/// level `ℓ`, applies it with an exact energy line search
/// `α = ⟨r, d⟩ / ⟨K d, d⟩` (which can never increase the energy error),
/// then polishes with a *restarted* block of MG-PCG iterations. The
/// prediction is made once at init; the direction still changes every
/// step because the iterate moves.
pub struct CoarseCorrectorStage {
    level: usize,
    unet_c: Option<Vec<f64>>,
}

impl CoarseCorrectorStage {
    /// Corrector predicting at hierarchy level `level` (0 = finest).
    pub fn new(level: usize) -> Self {
        CoarseCorrectorStage {
            level,
            unet_c: None,
        }
    }
}

impl HybridStrategy for CoarseCorrectorStage {
    fn name(&self) -> &'static str {
        "coarse-corrector"
    }

    fn init(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus {
        if self.level >= ctx.hier.num_levels() {
            return StageStatus::Unavailable;
        }
        let dims = ctx.hier.dims_at(self.level);
        let nu_l = ctx.hier.nu_at(self.level);
        let expect: usize = dims.iter().product();
        match finite_guess(ctx.surrogate, &dims, nu_l, expect) {
            Some(g) => self.unet_c = Some(g),
            None => return StageStatus::Unavailable,
        }
        StageStatus::Ok
    }

    fn step(&mut self, ctx: &mut SolveCtx<'_>) -> StageStatus {
        use mgd_fem::pcg::LinearOp;
        let unet_c = self.unet_c.as_ref().expect("init before step");
        let nn = ctx.u.len();
        // Correction direction from the (fixed) coarse prediction and the
        // (moving) iterate, prolonged to the fine grid and masked.
        let u_c = ctx.hier.sample_to_level(self.level, ctx.u);
        let d_c: Vec<f64> = unet_c.iter().zip(&u_c).map(|(a, b)| a - b).collect();
        let mut d = ctx.hier.prolong_to_finest(self.level, &d_c);
        ctx.sys.mask(&mut d);
        let mut kd = vec![0.0; nn];
        ctx.sys.apply(&d, &mut kd);
        ctx.sys.mask(&mut kd);
        let dkd = dot(&d, &kd);
        if dkd > mgd_tensor::F64_DIV_GUARD && dkd.is_finite() {
            let mut r = vec![0.0; nn];
            ctx.sys.residual_into(ctx.u, ctx.rhs, &mut r);
            let alpha = dot(&r, &d) / dkd;
            if alpha.is_finite() {
                for i in 0..nn {
                    ctx.u[i] += alpha * d[i];
                }
            }
        }
        // Restarted MG-PCG polish (the out-of-band update above
        // invalidates any previous Krylov recurrence).
        let mut ws = PcgWorkspace::start(ctx.sys, ctx.hier, ctx.u, ctx.rhs);
        for _ in 0..ctx.block.max(1) {
            if let PcgStep::Breakdown = ws.step(ctx.sys, ctx.hier, ctx.u) {
                return StageStatus::Breakdown;
            }
        }
        StageStatus::Ok
    }
}

/// The demotion chain for a requested strategy: the strategy itself,
/// then pure MG-PCG, then unconditional Jacobi-CG.
pub fn stage_chain(kind: StrategyKind) -> Vec<Box<dyn HybridStrategy>> {
    let mut chain: Vec<Box<dyn HybridStrategy>> = Vec::new();
    match kind {
        StrategyKind::PureMultigrid => chain.push(Box::new(MgPcgStage::new(false))),
        StrategyKind::InitialGuess => {
            chain.push(Box::new(MgPcgStage::new(true)));
            chain.push(Box::new(MgPcgStage::new(false)));
        }
        StrategyKind::CoarseCorrector { level } => {
            chain.push(Box::new(CoarseCorrectorStage::new(level)));
            chain.push(Box::new(MgPcgStage::new(false)));
        }
        StrategyKind::CgPolish => {
            chain.push(Box::new(JacobiCgStage::new(true)));
            chain.push(Box::new(MgPcgStage::new(false)));
        }
    }
    chain.push(Box::new(JacobiCgStage::new(false)));
    chain
}
