//! The `CertifiedSolve` driver: any strategy, always a residual bound.
//!
//! The driver owns the outer loop. After every outer step it recomputes
//! the **true** residual `‖mask(rhs − K u)‖₂` from scratch — never a
//! Krylov recurrence — and tracks the best iterate seen so far. A stage
//! is demoted (learned strategy → pure MG-PCG → Jacobi-CG) when it
//! reports itself unavailable, breaks down, produces non-finite values,
//! or stalls per [`StallPolicy`]. The final Jacobi-CG stage is
//! unconditionally convergent for the SPD systems built here, so the
//! driver always terminates with a certified [`CertifiedSolution`].

use crate::strategy::{stage_chain, SolveCtx, StageStatus, StrategyKind, Surrogate};
use crate::system::{ErasedHierarchy, ErasedSystem};

/// Stall detection: demote when the best residual fails to shrink by at
/// least a factor `rho` over `window` consecutive outer steps.
#[derive(Clone, Copy, Debug)]
pub struct StallPolicy {
    /// Required reduction factor over the window (in `(0, 1)`).
    pub rho: f64,
    /// Window length in outer steps (≥ 1).
    pub window: usize,
}

impl Default for StallPolicy {
    fn default() -> Self {
        StallPolicy {
            rho: 0.9,
            window: 4,
        }
    }
}

/// Certified-solve options.
#[derive(Clone, Copy, Debug)]
pub struct CertifyOptions {
    /// Convergence target, relative to the reference residual of the
    /// zero (BC-imposed) iterate.
    pub tol: f64,
    /// Cap on outer steps across all stages (the driver returns the best
    /// certified iterate even if the cap is hit).
    pub max_outer: usize,
    /// Inner (Krylov) iterations per outer step — i.e. per true-residual
    /// recomputation. Small blocks keep the certificate granular: the head
    /// start a good surrogate guess buys converts into outer steps actually
    /// skipped instead of being absorbed by one long block's overshoot. The
    /// extra cost is one operator apply per block, a few percent of the
    /// block's V-cycles.
    pub block: usize,
    /// Stall detector.
    pub stall: StallPolicy,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            tol: 1e-8,
            max_outer: 600,
            block: 2,
            stall: StallPolicy::default(),
        }
    }
}

/// A solution with a machine-checked residual certificate.
#[derive(Clone, Debug)]
pub struct CertifiedSolution {
    /// The nodal solution field (the best iterate encountered).
    pub u: Vec<f64>,
    /// True residual norm of `u`, recomputed from scratch at return.
    pub residual_norm: f64,
    /// Residual norm of the zero (BC-imposed) iterate — the reference
    /// the relative tolerance is measured against.
    pub reference_residual: f64,
    /// `residual_norm / reference_residual`.
    pub rel_residual: f64,
    /// Outer steps performed (true-residual recomputations).
    pub iterations: usize,
    /// Name of the stage that produced the final iterate.
    pub strategy_used: String,
    /// Whether the driver demoted out of the requested strategy.
    pub fell_back: bool,
    /// Whether `rel_residual ≤ tol` was reached.
    pub converged: bool,
    /// Best-so-far true residual after each outer step (monotone
    /// non-increasing by construction; index 0 is the reference).
    pub residual_history: Vec<f64>,
}

/// Runs a certified solve of `K(ν) u = rhs` (zero `rhs` = the paper's
/// BC-driven problem) with the requested strategy.
pub fn solve_certified(
    sys: &ErasedSystem,
    hier: &ErasedHierarchy,
    surrogate: &dyn Surrogate,
    kind: StrategyKind,
    rhs: Option<&[f64]>,
    opts: &CertifyOptions,
) -> CertifiedSolution {
    let nn = sys.num_nodes();
    let rhs: Vec<f64> = match rhs {
        Some(b) => b.to_vec(),
        None => vec![0.0; nn],
    };
    let mut u = vec![0.0; nn];
    sys.impose_bc(&mut u);
    let r_ref = sys.residual_norm(&u, &rhs);
    let mut history = vec![r_ref];
    if r_ref == 0.0 {
        return CertifiedSolution {
            u,
            residual_norm: 0.0,
            reference_residual: 0.0,
            rel_residual: 0.0,
            iterations: 0,
            strategy_used: kind.name().to_string(),
            fell_back: false,
            converged: true,
            residual_history: history,
        };
    }
    let target = opts.tol * r_ref;

    let mut stages = stage_chain(kind);
    stages.reverse(); // pop() yields the requested strategy first
    let mut best_u = u.clone();
    let mut best_r = r_ref;
    let mut fell_back = false;
    let mut iterations = 0usize;
    // Best residual at entry + steps taken, per active stage (stall scope).
    let mut stage_hist: Vec<f64> = vec![r_ref];

    let mut stage = stages.pop().expect("chain is never empty");
    // Activate the first stage; demote through the chain on init failure.
    loop {
        let mut ctx = SolveCtx {
            sys,
            hier,
            surrogate,
            rhs: &rhs,
            u: &mut u,
            block: opts.block,
        };
        match stage.init(&mut ctx) {
            StageStatus::Ok => break,
            _ => match stages.pop() {
                Some(next) => {
                    fell_back = true;
                    stage = next;
                    u.copy_from_slice(&best_u);
                }
                None => break,
            },
        }
    }

    // A seeding init may already be at (or near) the target — certify the
    // seeded iterate before stepping so an exact guess terminates cleanly
    // instead of breaking down on a zero residual.
    let rn = sys.residual_norm(&u, &rhs);
    if rn.is_finite() && u.iter().all(|x| x.is_finite()) && rn < best_r {
        best_r = rn;
        best_u.copy_from_slice(&u);
        history.push(best_r);
        stage_hist.push(best_r);
    }

    'outer: while iterations < opts.max_outer && best_r > target {
        let status = {
            let mut ctx = SolveCtx {
                sys,
                hier,
                surrogate,
                rhs: &rhs,
                u: &mut u,
                block: opts.block,
            };
            stage.step(&mut ctx)
        };
        iterations += 1;
        let rn = sys.residual_norm(&u, &rhs);
        let finite = rn.is_finite() && u.iter().all(|x| x.is_finite());
        if finite && rn < best_r {
            best_r = rn;
            best_u.copy_from_slice(&u);
        }
        history.push(best_r);
        stage_hist.push(best_r);
        if best_r <= target {
            break;
        }
        // The last stage has nowhere to demote to and is unconditionally
        // convergent — never stall it out, only run it to the cap.
        let stalled = !stages.is_empty()
            && stage_hist.len() > opts.stall.window
            && stage_hist[stage_hist.len() - 1]
                > opts.stall.rho * stage_hist[stage_hist.len() - 1 - opts.stall.window];
        let demote = !finite || status != StageStatus::Ok || stalled;
        if demote {
            // Restart from the best certified iterate; walk the chain
            // until a stage initializes (the last stage always does).
            loop {
                match stages.pop() {
                    Some(next) => {
                        fell_back = true;
                        stage = next;
                    }
                    None => break 'outer, // nothing left below Jacobi-CG
                }
                u.copy_from_slice(&best_u);
                stage_hist = vec![best_r];
                let mut ctx = SolveCtx {
                    sys,
                    hier,
                    surrogate,
                    rhs: &rhs,
                    u: &mut u,
                    block: opts.block,
                };
                if stage.init(&mut ctx) == StageStatus::Ok {
                    break;
                }
            }
        }
    }

    let residual_norm = sys.residual_norm(&best_u, &rhs);
    CertifiedSolution {
        rel_residual: residual_norm / r_ref,
        converged: residual_norm <= target,
        u: best_u,
        residual_norm,
        reference_residual: r_ref,
        iterations,
        strategy_used: stage.name().to_string(),
        fell_back,
        residual_history: history,
    }
}
