//! The analytic epoch-time model.

use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// Architecture mirror of `mgd_nn::UNetConfig` (kept dependency-free so the
/// model can describe networks it never instantiates, e.g. the 256³ one).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ArchModel {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Down/up stages.
    pub depth: usize,
    /// First-level filters.
    pub base_filters: usize,
    /// 2D networks use `(1,k,k)` kernels.
    pub two_d: bool,
}

impl Default for ArchModel {
    fn default() -> Self {
        ArchModel {
            in_channels: 1,
            out_channels: 1,
            depth: 3,
            base_filters: 16,
            two_d: false,
        }
    }
}

impl ArchModel {
    fn channels(&self, i: usize) -> usize {
        self.base_filters << i
    }

    fn conv_kernel_volume(&self) -> usize {
        if self.two_d {
            9
        } else {
            27
        }
    }

    fn up_kernel_volume(&self) -> usize {
        if self.two_d {
            4
        } else {
            8
        }
    }

    fn level_factor(&self) -> usize {
        if self.two_d {
            4
        } else {
            8
        }
    }
}

/// Learnable parameter count of the modeled U-Net (mirrors
/// `mgd_nn::UNet::num_parameters`, validated against it in the integration
/// tests).
pub fn unet_params(arch: &ArchModel) -> usize {
    let kv = arch.conv_kernel_volume();
    let ukv = arch.up_kernel_volume();
    let mut total = 0usize;
    let conv = |cin: usize, cout: usize, k: usize| cin * cout * k + cout /* bias */ + 2 * cout /* bn */;
    for i in 0..arch.depth {
        let cin = if i == 0 {
            arch.in_channels
        } else {
            arch.channels(i - 1)
        };
        total += conv(cin, arch.channels(i), kv);
    }
    total += conv(arch.channels(arch.depth - 1), arch.channels(arch.depth), kv);
    for i in 0..arch.depth {
        // Transpose conv (no BN) + merge block.
        total += arch.channels(i + 1) * arch.channels(i) * ukv + arch.channels(i);
        total += conv(2 * arch.channels(i), arch.channels(i), kv);
    }
    // Head conv 1×1 (no BN).
    total += arch.channels(0) * arch.out_channels + arch.out_channels;
    total
}

/// Forward-pass FLOPs for one sample at resolution `(d, h, w)` (counting a
/// multiply-add as 2 FLOPs; pooling/activations are negligible).
pub fn unet_flops_per_sample(arch: &ArchModel, dims: (usize, usize, usize)) -> f64 {
    let (d, h, w) = dims;
    let vox0 = (d * h * w) as f64;
    let kv = arch.conv_kernel_volume() as f64;
    let ukv = arch.up_kernel_volume() as f64;
    let lf = arch.level_factor() as f64;
    let conv = |vox: f64, cin: usize, cout: usize, k: f64| vox * cin as f64 * cout as f64 * k * 2.0;
    let mut flops = 0.0;
    for i in 0..arch.depth {
        let vox = vox0 / lf.powi(i as i32);
        let cin = if i == 0 {
            arch.in_channels
        } else {
            arch.channels(i - 1)
        };
        flops += conv(vox, cin, arch.channels(i), kv);
    }
    let vox_b = vox0 / lf.powi(arch.depth as i32);
    flops += conv(
        vox_b,
        arch.channels(arch.depth - 1),
        arch.channels(arch.depth),
        kv,
    );
    for i in 0..arch.depth {
        let vox = vox0 / lf.powi(i as i32);
        flops += conv(vox, arch.channels(i + 1), arch.channels(i), ukv / lf) * lf; // convT scatter
        flops += conv(vox, 2 * arch.channels(i), arch.channels(i), kv);
    }
    flops += conv(vox0, arch.channels(0), arch.out_channels, 1.0);
    flops
}

/// One strong-scaling run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Machine model.
    pub spec: MachineSpec,
    /// Network architecture.
    pub arch: ArchModel,
    /// Field resolution `(d, h, w)` (`d = 1` for 2D).
    pub resolution: (usize, usize, usize),
    /// Total training samples per epoch.
    pub samples: usize,
    /// Local (per-worker) mini-batch size.
    pub local_batch: usize,
    /// Gradient element width in bytes (the paper trains fp32).
    pub grad_bytes: usize,
}

/// Modeled epoch cost breakdown.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochTime {
    /// Compute seconds per epoch.
    pub compute_s: f64,
    /// All-reduce seconds per epoch.
    pub comm_s: f64,
    /// Total seconds.
    pub total_s: f64,
    /// Mini-batch steps per epoch.
    pub steps: usize,
}

/// Models one epoch on `workers` devices.
pub fn epoch_time(cfg: &RunConfig, workers: usize) -> EpochTime {
    assert!(workers >= 1);
    let spec = &cfg.spec;
    let fwd = unet_flops_per_sample(&cfg.arch, cfg.resolution);
    // Backward ≈ 2× forward (grad-input + grad-weight passes).
    let flops_per_sample = 3.0 * fwd;
    let t_sample = flops_per_sample / (spec.device_peak_flops * spec.efficiency);

    let local_samples = cfg.samples.div_ceil(workers);
    let steps = local_samples.div_ceil(cfg.local_batch);
    let compute_s = local_samples as f64 * t_sample;

    // Ring all-reduce per step over the gradient vector.
    let nw = unet_params(&cfg.arch) as f64;
    let bytes = nw * cfg.grad_bytes as f64;
    let wpn = spec.workers_per_node();
    let nodes = workers.div_ceil(wpn);
    let comm_per_step = if workers == 1 {
        0.0
    } else {
        // Bottleneck link: intra-node fabric for single-node rings; the
        // node's injection bandwidth shared by its co-located workers when
        // the ring crosses nodes.
        let bw_gbps = if nodes == 1 {
            spec.intra_node_bw_gbps
        } else {
            spec.bandwidth_gbps / wpn.min(workers) as f64
        };
        let bw = bw_gbps * 1e9 / 8.0; // bytes/s
        let p = workers as f64;
        2.0 * (p - 1.0) / p * bytes / bw + 2.0 * (p - 1.0) * spec.latency_s
    };
    let comm_s = comm_per_step * steps as f64;
    EpochTime {
        compute_s,
        comm_s,
        total_s: compute_s + comm_s,
        steps,
    }
}

/// One row of a strong-scaling curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Worker (device) count.
    pub workers: usize,
    /// Node count.
    pub nodes: usize,
    /// Epoch cost breakdown.
    pub epoch: EpochTime,
    /// Speedup vs. the 1-worker run.
    pub speedup: f64,
    /// Parallel efficiency `speedup / workers`.
    pub efficiency: f64,
}

/// Sweeps worker counts and returns the strong-scaling curve.
pub fn strong_scaling(cfg: &RunConfig, worker_counts: &[usize]) -> Vec<ScalingPoint> {
    let base = epoch_time(cfg, 1).total_s;
    worker_counts
        .iter()
        .map(|&p| {
            let epoch = epoch_time(cfg, p);
            let speedup = base / epoch.total_s;
            ScalingPoint {
                workers: p,
                nodes: p.div_ceil(cfg.spec.workers_per_node()),
                epoch,
                speedup,
                efficiency: speedup / p as f64,
            }
        })
        .collect()
}

/// Weak-scaling sweep: the per-worker workload is held constant
/// (`samples_per_worker`), so the ideal curve is a *flat* epoch time.
/// Complements the paper's strong-scaling Figures 9–10 with the other
/// standard HPC view of the same cost model.
pub fn weak_scaling(
    cfg: &RunConfig,
    samples_per_worker: usize,
    worker_counts: &[usize],
) -> Vec<ScalingPoint> {
    let base = {
        let mut c = cfg.clone();
        c.samples = samples_per_worker;
        epoch_time(&c, 1).total_s
    };
    worker_counts
        .iter()
        .map(|&p| {
            let mut c = cfg.clone();
            c.samples = samples_per_worker * p;
            let epoch = epoch_time(&c, p);
            // Weak-scaling efficiency: T(1) / T(p) for fixed per-worker work.
            let efficiency = base / epoch.total_s;
            ScalingPoint {
                workers: p,
                nodes: p.div_ceil(cfg.spec.workers_per_node()),
                epoch,
                speedup: p as f64 * efficiency,
                efficiency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{azure_ndv2, bridges2};

    fn fig9_config() -> RunConfig {
        RunConfig {
            spec: azure_ndv2(),
            arch: ArchModel::default(),
            resolution: (256, 256, 256),
            samples: 1024,
            local_batch: 2,
            grad_bytes: 4,
        }
    }

    #[test]
    fn single_gpu_epoch_near_paper_anchor() {
        // Paper Figure 9: 48 minutes per epoch on one V100 at 256³.
        let t = epoch_time(&fig9_config(), 1);
        let minutes = t.total_s / 60.0;
        assert!(
            (30.0..70.0).contains(&minutes),
            "single-GPU epoch {minutes:.1} min should be near the 48 min anchor"
        );
    }

    #[test]
    fn full_cluster_epoch_near_six_seconds() {
        // Paper Figure 9: ~6 s/epoch on 512 GPUs (speedup ≈ 480×).
        let curve = strong_scaling(&fig9_config(), &[1, 512]);
        let t512 = curve[1].epoch.total_s;
        assert!((2.0..20.0).contains(&t512), "512-GPU epoch {t512:.1}s");
        assert!(curve[1].speedup > 300.0, "speedup {}", curve[1].speedup);
    }

    #[test]
    fn epoch_time_monotone_in_workers() {
        let cfg = fig9_config();
        let counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
        let curve = strong_scaling(&cfg, &counts);
        for w in curve.windows(2) {
            assert!(
                w[1].epoch.total_s <= w[0].epoch.total_s * 1.001,
                "{} -> {} workers grew epoch time",
                w[0].workers,
                w[1].workers
            );
        }
    }

    #[test]
    fn speedup_bounded_by_worker_count() {
        let curve = strong_scaling(&fig9_config(), &[1, 2, 8, 64, 512]);
        for p in curve {
            assert!(p.speedup <= p.workers as f64 + 1e-9);
            assert!(p.efficiency <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn comm_fraction_grows_with_workers() {
        let cfg = fig9_config();
        let t8 = epoch_time(&cfg, 8);
        let t512 = epoch_time(&cfg, 512);
        let f8 = t8.comm_s / t8.total_s;
        let f512 = t512.comm_s / t512.total_s;
        assert!(f512 > f8, "comm fraction must grow: {f8} -> {f512}");
    }

    #[test]
    fn cpu_cluster_scales_to_128_nodes() {
        // Figure 10 shape: near-linear to 128 Bridges2 nodes at 512³.
        let cfg = RunConfig {
            spec: bridges2(),
            arch: ArchModel::default(),
            resolution: (512, 512, 512),
            samples: 1024,
            local_batch: 2,
            grad_bytes: 4,
        };
        let curve = strong_scaling(&cfg, &[1, 2, 4, 8, 16, 32, 64, 128]);
        let last = curve.last().unwrap();
        assert!(
            last.efficiency > 0.8,
            "128-node efficiency {}",
            last.efficiency
        );
    }

    #[test]
    fn weak_scaling_stays_near_flat() {
        let cfg = fig9_config();
        let curve = weak_scaling(&cfg, 8, &[1, 8, 64, 512]);
        for pt in &curve {
            assert!(
                pt.efficiency > 0.9,
                "weak-scaling efficiency fell to {} at {} workers",
                pt.efficiency,
                pt.workers
            );
        }
    }

    #[test]
    fn params_model_counts_paper_scale_network() {
        let n = unet_params(&ArchModel::default());
        assert!(n > 100_000 && n < 5_000_000, "{n}");
    }

    #[test]
    fn flops_scale_with_volume() {
        let arch = ArchModel::default();
        let f64c = unet_flops_per_sample(&arch, (64, 64, 64));
        let f128 = unet_flops_per_sample(&arch, (128, 128, 128));
        let ratio = f128 / f64c;
        assert!(
            (ratio - 8.0).abs() < 0.5,
            "8x voxels -> ~8x FLOPs, got {ratio}"
        );
    }

    #[test]
    fn two_d_flops_quadratic_in_resolution() {
        // The Figure 2 observation: per-epoch time grows ~4x per 2D
        // resolution doubling at high resolution.
        let arch = ArchModel {
            two_d: true,
            ..Default::default()
        };
        let a = unet_flops_per_sample(&arch, (1, 256, 256));
        let b = unet_flops_per_sample(&arch, (1, 512, 512));
        let ratio = b / a;
        assert!((ratio - 4.0).abs() < 0.3, "{ratio}");
    }
}
