//! Performance model of the paper's GPU/CPU clusters.
//!
//! The paper's strong-scaling studies (Figures 9 and 10) ran on 512 V100
//! GPUs (Azure NDv2) and 128 AMD EPYC-7742 nodes (PSC Bridges2) — hardware
//! this reproduction cannot access. Per DESIGN.md §3, this crate models the
//! two quantities that govern those curves:
//!
//! 1. **compute per sample** — U-Net forward+backward FLOPs divided by an
//!    *effective* device throughput (peak × calibrated efficiency; the
//!    efficiency constant is anchored to the paper's 48 min/epoch single-GPU
//!    measurement at 256³);
//! 2. **ring all-reduce time** — `2(p−1)/p · bytes / bw + 2(p−1)·latency`
//!    per mini-batch, with the inter-node link shared by the co-located
//!    devices of a node.
//!
//! Small-scale *measured* scaling (the in-process ranks of `mgd-dist`)
//! validates the shape where we can measure; this model extends the curves
//! to paper scale. See `mgd-bench` bins `fig9_gpu_scaling` and
//! `fig10_cpu_scaling`.

pub mod model;
pub mod specs;

pub use model::{
    strong_scaling, unet_flops_per_sample, unet_params, weak_scaling, ArchModel, EpochTime,
    RunConfig, ScalingPoint,
};
pub use specs::{azure_ndv2, bridges2, MachineSpec};
