//! Machine specifications (paper Table 6) plus modeling constants.

use serde::{Deserialize, Serialize};

/// One machine type of Table 6, augmented with the constants the
/// performance model needs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Display name.
    pub name: String,
    /// "Virtual Machine" / "Bare-Metal" (Table 6 row: Type).
    pub kind: String,
    /// CPU model string.
    pub cpu: String,
    /// CPU cores per node.
    pub cpu_cores: usize,
    /// Node memory in GB.
    pub memory_gb: usize,
    /// GPU model (empty for CPU-only nodes).
    pub gpu: String,
    /// GPU memory in GB (0 when no GPU).
    pub gpu_memory_gb: usize,
    /// GPUs per node (0 for CPU nodes).
    pub gpus_per_node: usize,
    /// Interconnect name.
    pub interconnect: String,
    /// Node injection bandwidth in Gb/s (Table 6: Bandwidth).
    pub bandwidth_gbps: f64,
    /// Network topology.
    pub topology: String,
    /// Peak device throughput in FLOP/s used by the model (per GPU, or per
    /// CPU node when `gpus_per_node == 0`).
    pub device_peak_flops: f64,
    /// Intra-node device-to-device bandwidth in Gb/s (NVLink for NDv2).
    pub intra_node_bw_gbps: f64,
    /// Per-hop message latency in seconds.
    pub latency_s: f64,
    /// Calibrated fraction of peak the training kernels sustain.
    pub efficiency: f64,
}

impl MachineSpec {
    /// Workers available per node (GPUs, or 1 MPI process per CPU node —
    /// the paper runs "one MPI process per node using all 128 CPU cores").
    pub fn workers_per_node(&self) -> usize {
        if self.gpus_per_node > 0 {
            self.gpus_per_node
        } else {
            1
        }
    }
}

/// Azure NDv2: 8× V100 32GB, Intel Xeon Platinum 8168, EDR InfiniBand
/// (Table 6, left column).
///
/// Efficiency is calibrated so one V100 takes ≈48 min/epoch on the 256³
/// workload of Figure 9 (1024 samples, local batch 2).
pub fn azure_ndv2() -> MachineSpec {
    MachineSpec {
        name: "Azure NDv2".into(),
        kind: "Virtual Machine".into(),
        cpu: "Intel Xeon Platinum 8168".into(),
        cpu_cores: 40,
        memory_gb: 672,
        gpu: "Tesla V100".into(),
        gpu_memory_gb: 32,
        gpus_per_node: 8,
        interconnect: "EDR InfiniBand".into(),
        bandwidth_gbps: 100.0,
        topology: "Fat tree".into(),
        device_peak_flops: 15.7e12, // V100 fp32
        intra_node_bw_gbps: 300.0,  // NVLink-2 aggregate per GPU
        latency_s: 5e-6,
        efficiency: 0.08,
    }
}

/// PSC Bridges2 regular-memory node: AMD EPYC 7742 ×2? The paper lists 128
/// cores / 256GB with HDR InfiniBand (Table 6, right column).
pub fn bridges2() -> MachineSpec {
    MachineSpec {
        name: "PSC Bridges2".into(),
        kind: "Bare-Metal".into(),
        cpu: "AMD EPYC 7742".into(),
        cpu_cores: 128,
        memory_gb: 256,
        gpu: String::new(),
        gpu_memory_gb: 0,
        gpus_per_node: 0,
        interconnect: "HDR InfiniBand".into(),
        bandwidth_gbps: 200.0,
        topology: "Fat tree".into(),
        // 128 cores × ~2.25 GHz × 16 fp32 FLOP/cycle (AVX2 FMA) ≈ 9.2 TF.
        device_peak_flops: 9.2e12,
        intra_node_bw_gbps: 200.0,
        latency_s: 2e-6,
        efficiency: 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_values() {
        let a = azure_ndv2();
        assert_eq!(a.cpu_cores, 40);
        assert_eq!(a.memory_gb, 672);
        assert_eq!(a.gpus_per_node, 8);
        assert_eq!(a.gpu_memory_gb, 32);
        assert_eq!(a.bandwidth_gbps, 100.0);
        let b = bridges2();
        assert_eq!(b.cpu_cores, 128);
        assert_eq!(b.memory_gb, 256);
        assert_eq!(b.gpus_per_node, 0);
        assert_eq!(b.bandwidth_gbps, 200.0);
    }

    #[test]
    fn workers_per_node() {
        assert_eq!(azure_ndv2().workers_per_node(), 8);
        assert_eq!(bridges2().workers_per_node(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let a = azure_ndv2();
        let json = serde_json::to_string(&a).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, a.name);
        assert_eq!(back.device_peak_flops, a.device_peak_flops);
    }
}
